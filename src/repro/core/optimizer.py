"""The ReMac optimizer: compiler -> optimizer -> plan pipeline (Fig. 7).

:class:`ReMacOptimizer` strings the whole system together:

1. **Parser/compiler** — a parsed :class:`~repro.lang.program.Program` is
   normalized and split into coordinate blocks (:mod:`repro.core.chains`).
2. **Searcher** — the block-wise search (or a configured baseline) finds
   CSE and LSE options (:mod:`repro.core.search` et al.).
3. **Adapter + cost graph** — the chosen strategy evaluates options with
   the cost model and picks the efficient combination
   (:mod:`repro.core.strategies`, :mod:`repro.core.probe`).
4. **Plan generator** — the rewriter materializes the plan as an ordinary
   program with hoisted/shared temporaries (:mod:`repro.core.rewrite`).

The result is a :class:`~repro.runtime.plan.CompiledProgram` ready for any
executor; swapping the runtime is how the paper migrates ReMac to other
engines.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace

from ..config import ClusterConfig, OptimizerConfig
from ..errors import OptimizerError
from ..lang.program import Program
from ..lang.typecheck import Environment, check_program
from ..runtime.hybrid import ExecutionPolicy
from ..runtime.plan import CompiledProgram
from .chains import build_chains
from .cost.evaluate import ProgramCostEvaluator, sketch_inputs
from .cost.model import CostModel
from .plancache import (DataTokens, InputSketchMemo, PlanCache,
                        plan_fingerprint)
from .rewrite import rewrite_program
from .search import blockwise_search, explicit_cse_options
from .sparsity import make_estimator
from .spores import spores_search
from .strategies import choose_options
from .treewise import treewise_search


class _InflightCompile:
    """One cold compile in progress: followers wait instead of racing it."""

    __slots__ = ("event", "result", "error", "followers")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: CompiledProgram | None = None
        self.error: BaseException | None = None
        self.followers = 0


class ReMacOptimizer:
    """End-to-end redundancy-elimination optimizer.

    Repeated compiles are served by a *compilation fast path*: a plan cache
    keyed by a fingerprint of everything the plan depends on (warm compiles
    skip the pipeline entirely), plus memoized sketch propagation and
    operator pricing and an optional candidate-pricing thread pool on the
    cold path. All three layers are perf-only: with them disabled or
    enabled, the chosen plans and predicted costs are identical.

    The optimizer is safe to share across threads (the serving deployment:
    one warm optimizer, N tenants). Concurrent compiles of the *same*
    fingerprint are single-flighted: the first caller runs the cold
    pipeline, every concurrent duplicate blocks on its result and is
    counted as ``coalesced`` — so N simultaneous submissions of one
    workload cost exactly one compile. A shared :class:`InputSketchMemo`
    additionally lets *near-miss* compiles (same resident inputs, different
    program) skip re-sketching the data.

    ``plan_cache`` optionally injects an existing (typically process-wide,
    shared across engines) cache instead of building a private one;
    fingerprints embed the cluster, config, and policy, so distinct engines
    can never collide in a shared cache.
    """

    def __init__(self, cluster: ClusterConfig | None = None,
                 config: OptimizerConfig | None = None,
                 policy: ExecutionPolicy | None = None,
                 plan_cache: PlanCache | None = None):
        self.cluster = cluster or ClusterConfig()
        self.config = config or OptimizerConfig()
        self.policy = policy or ExecutionPolicy.systemds()
        #: Compiled-plan LRU (None when disabled via config.plan_cache).
        self.plan_cache: PlanCache | None = plan_cache if plan_cache is not None \
            else (PlanCache(self.config.plan_cache_size)
                  if self.config.plan_cache else None)
        #: Cross-compile input-sketch memo (shared state like the cache).
        self.sketch_memo = InputSketchMemo()
        self._own_tokens = DataTokens()
        self._inflight: dict[str, _InflightCompile] = {}
        self._inflight_lock = threading.Lock()

    @property
    def plan_cache_stats(self) -> dict[str, int] | None:
        """Hit/miss/eviction/coalesce counters, or None when disabled."""
        if self.plan_cache is None:
            return None
        return self.plan_cache.stats_dict()

    def adopt_plan_cache(self, cache: PlanCache | None) -> "ReMacOptimizer":
        """Swap in a (shared) plan cache; returns self for chaining."""
        self.plan_cache = cache
        return self

    @property
    def _data_tokens(self) -> DataTokens:
        """Identity tokens for bound input data (cache's registry when on)."""
        if self.plan_cache is not None:
            return self.plan_cache.data_tokens
        return self._own_tokens

    def _fingerprint(self, program: Program, inputs: Environment,
                     input_data: dict | None, iterations: int | None) -> str:
        return plan_fingerprint(
            program, inputs, self.config, self.cluster, self.policy,
            iterations=iterations, input_data=input_data,
            tokens=self._data_tokens)

    def _warm_copy(self, hit: CompiledProgram, outcome: str,
                   started: float) -> CompiledProgram:
        """A cached plan re-badged for one caller (hit or coalesced)."""
        notes = dict(hit.notes)
        notes["plan_cache"] = outcome
        notes["plan_cache_stats"] = self.plan_cache.stats_dict()
        # A warm compile re-collects no estimator statistics.
        notes["stats_collection_seconds"] = 0.0
        return replace(hit, notes=notes,
                       compile_seconds=time.perf_counter() - started)

    def cached_plan(self, program: Program, inputs: Environment,
                    input_data: dict | None = None,
                    iterations: int | None = None) -> CompiledProgram | None:
        """The cached plan for this exact compile, or None — never compiles.

        The server's admission path uses this cheap probe to route warm
        requests straight to execution instead of queueing them behind
        slow cold compiles. A present plan counts as a hit; absence counts
        nothing (the eventual ``compile()`` will record the miss).
        """
        if self.plan_cache is None:
            return None
        started = time.perf_counter()
        key = self._fingerprint(program, inputs, input_data, iterations)
        hit = self.plan_cache.probe(key)
        if hit is None:
            return None
        return self._warm_copy(hit, "hit", started)

    def compile(self, program: Program, inputs: Environment,
                input_data: dict | None = None,
                iterations: int | None = None) -> CompiledProgram:
        """Compile ``program`` into an optimized, executable plan.

        ``inputs`` maps input names to metadata; ``input_data`` optionally
        provides the actual matrices so data-dependent estimators (MNC,
        sampling, density map) can sketch real structure.
        """
        started = time.perf_counter()
        if self.plan_cache is None:
            return self._compile_cold(program, inputs, input_data, iterations,
                                      started)
        cache_key = self._fingerprint(program, inputs, input_data, iterations)
        # Single-flight: under one lock, either find the plan, join an
        # in-flight compile of the same fingerprint, or become the leader.
        with self._inflight_lock:
            hit = self.plan_cache.probe(cache_key)
            if hit is None:
                record = self._inflight.get(cache_key)
                if record is None:
                    record = _InflightCompile()
                    self._inflight[cache_key] = record
                    self.plan_cache.note_miss()
                    leader = True
                else:
                    record.followers += 1
                    self.plan_cache.note_coalesced()
                    leader = False
        if hit is not None:
            return self._warm_copy(hit, "hit", started)
        if not leader:
            record.event.wait()
            if record.error is not None:
                raise record.error
            return self._warm_copy(record.result, "coalesced", started)
        try:
            compiled = self._compile_cold(program, inputs, input_data,
                                          iterations, started)
        except BaseException as error:
            with self._inflight_lock:
                self._inflight.pop(cache_key, None)
            record.error = error
            record.event.set()
            raise
        self.plan_cache.put(cache_key, compiled)
        with self._inflight_lock:
            self._inflight.pop(cache_key, None)
        record.result = compiled
        record.event.set()
        compiled.notes["plan_cache"] = "miss"
        compiled.notes["plan_cache_stats"] = self.plan_cache.stats_dict()
        return compiled

    def _compile_cold(self, program: Program, inputs: Environment,
                      input_data: dict | None, iterations: int | None,
                      started: float) -> CompiledProgram:
        """The full optimization pipeline (no plan-cache shortcut)."""
        check_program(program, inputs)  # fail fast on shape errors
        estimator = make_estimator(self.config.estimator)
        if self.config.calibration is not None:
            # Calibrated re-entry (mid-run replanning): observed product
            # metas override the estimator's propagations where they match.
            from .sparsity.calibrate import CalibratedEstimator
            estimator = CalibratedEstimator(estimator, self.config.calibration)
        model = CostModel(self.cluster, estimator, self.policy,
                          memoize=self.config.cost_memo)
        sketches = self._sketch_inputs(model, inputs, input_data)

        # Adaptive elimination iterates to a fixpoint: once an option is
        # applied, its temporary's defining chain can expose follow-up
        # redundancy (e.g. after the DFP numerator's implicit CSE collapses
        # to an outer product, AᵀA resurfaces as a loop-constant chain in
        # the temp definition and gets hoisted in the next round). Fixed
        # strategies run a single round, matching their §6.3.1 definitions.
        max_rounds = 3 if self.config.strategy == "adaptive" else 1
        rewritten = program
        applied = []
        rejected = []
        found_total = 0
        search_notes: dict = {}
        strategy_name = self.config.strategy
        chains = build_chains(rewritten, inputs, iterations)
        for round_index in range(max_rounds):
            options, round_notes = self._search(chains)
            if round_index == 0:
                search_notes = round_notes
                found_total = len(options)
            else:
                found_total += len(options)
            strategy = choose_options(self.config.strategy, chains, model,
                                      options, sketches, self.config)
            strategy_name = strategy.strategy
            if round_index == 0:
                chosen_ids = {o.option_id for o in strategy.chosen}
                rejected = [o for o in options if o.option_id not in chosen_ids]
            if not strategy.chosen and round_index > 0:
                break
            rewritten = rewrite_program(
                chains, strategy.chosen, model, sketches,
                temp_prefix=f"{self.config.temp_prefix}{round_index}_")
            applied.extend(strategy.chosen)
            if not strategy.chosen:
                break
            chains = build_chains(rewritten, inputs, iterations)

        # The final evaluation also records per-operator predicted prices
        # (keyed by statement path) so the execution tracer can report
        # predicted-vs-observed drift. Recording is pure observation: the
        # evaluated cost is identical with or without it.
        predicted_ops: dict = {}
        cost = ProgramCostEvaluator(model).evaluate(rewritten, sketches,
                                                    iterations=chains.iterations,
                                                    record=predicted_ops)
        fusion_notes = None
        if self.policy.fuse:
            from .enumerate import enumerate_fusion_regions
            fusion_notes = enumerate_fusion_regions(rewritten, model, sketches)
        compile_seconds = time.perf_counter() - started
        return CompiledProgram(
            program=rewritten,
            predicted_ops={path: tuple(ops)
                           for path, ops in predicted_ops.items()},
            applied_options=applied,
            rejected_options=rejected,
            estimated_cost=cost.total_seconds,
            compile_seconds=compile_seconds,
            notes={
                "search": self.config.search,
                "strategy": strategy_name,
                "estimator": estimator.name,
                "combiner": self.config.combiner,
                "options_found": found_total,
                "stats_collection_seconds": model.stats_collection_seconds,
                "strategy_notes": strategy.notes,
                "cost_memo": model.memo_stats if self.config.cost_memo else None,
                "pricing_workers": self.config.pricing_workers,
                "fusion": fusion_notes,
                **search_notes,
            })

    # ------------------------------------------------------------------
    def _sketch_inputs(self, model, inputs: Environment,
                       input_data: dict | None) -> dict:
        """Sketch program inputs through the cross-compile memo.

        Keys mirror the fingerprint's input lines — estimator name, data
        identity token, metadata, symmetric flag — so a memo hit is exactly
        a re-sketch of data the optimizer has already sketched. Memo hits
        skip statistics collection (the model never sees the input), the
        same accounting a plan-cache hit reports. Calibrated compiles
        (mid-run replanning) bypass the memo: calibration overrides
        propagation from observations, so their sketches must be rebuilt.
        """
        if self.config.calibration is not None:
            return sketch_inputs(model, inputs, input_data)
        data = input_data or {}
        tokens = self._data_tokens
        sketches: dict = {}
        for name, meta in inputs.items():
            symmetric = getattr(meta, "symmetric", False)
            key = (self.config.estimator, tokens.token(data.get(name)),
                   meta, symmetric)
            sketch = self.sketch_memo.lookup(key)
            if sketch is None:
                sketch = model.sketch_of(data.get(name), meta,
                                         symmetric=symmetric)
                self.sketch_memo.store(key, sketch)
            sketches[name] = sketch
        return sketches

    # ------------------------------------------------------------------
    def _search(self, chains):
        name = self.config.search
        if name == "blockwise":
            result = blockwise_search(chains)
            return result.options, {"search_seconds": result.wall_seconds,
                                    "windows": result.windows_visited}
        if name == "explicit":
            options = explicit_cse_options(chains)
            return options, {}
        if name == "treewise":
            result = treewise_search(chains,
                                     plan_budget=self.config.treewise_plan_budget)
            return result.options, {"search_seconds": result.wall_seconds,
                                    "plans_visited": result.plans_visited,
                                    "plans_total": result.plans_total,
                                    "budget_exceeded": result.budget_exceeded}
        if name == "spores":
            result = spores_search(chains,
                                   sample_limit=self.config.spores_sample_limit)
            return result.options, {"search_seconds": result.wall_seconds,
                                    "sampled_plans": result.sampled_plans}
        raise OptimizerError(f"unknown search method {name!r}")
