"""Tree-wise search baseline (§3.1): traverse every plan tree.

The basic method the paper argues against: enumerate *all* execution plan
trees of every expression — every parenthesization of every chain, each
node optionally computed via its transposed form, combined across the
blocks of a statement — and detect common/loop-constant operators by
structural comparison. A chain of n matrices alone has
``Catalan(n-1) * 2^(n-1)`` trees (the paper counts >2M for the DFP
numerator), and a statement multiplies its blocks' counts together, so the
traversal carries a safety budget; exceeding it raises
:class:`~repro.errors.SearchBudgetExceeded` — the analogue of the paper's
">8 hours" entries for DFP and BFGS.

Because block-wise and tree-wise search provably cover the same redundancy
(§6.2.2: "the block-wise and tree-wise searches output the same results"),
the options returned on success are the block-wise ones; what this module
reproduces is the *cost* of finding them.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from ..errors import SearchBudgetExceeded
from .chains import ChainSite, ProgramChains
from .search import SearchResult, blockwise_search


def catalan(n: int) -> int:
    """The n-th Catalan number: parenthesizations of an (n+1)-factor chain."""
    return math.comb(2 * n, n) // (n + 1)


def plan_tree_count(chain_length: int) -> int:
    """Plan trees of one chain: associations times per-node transpose choice."""
    if chain_length <= 1:
        return 1
    internal = chain_length - 1
    return catalan(internal) * (2 ** internal)


def statement_plan_count(chains: ProgramChains, stmt_index: int) -> int:
    """Plan trees of a whole statement: the product over its blocks."""
    total = 1
    for site in chains.sites_of_statement(stmt_index):
        total *= plan_tree_count(len(site))
    return total


def program_plan_count(chains: ProgramChains) -> int:
    """Plan trees the tree-wise search would traverse for the program."""
    return sum(statement_plan_count(chains, ns.index) for ns in chains.statements)


@dataclass
class TreewiseResult(SearchResult):
    """Search result plus traversal statistics."""

    plans_visited: int = 0
    plans_total: int = 0
    budget_exceeded: bool = False
    subtree_table_size: int = 0
    table: dict = field(default_factory=dict)


def treewise_search(chains: ProgramChains, plan_budget: int = 2_000_000,
                    raise_on_budget: bool = False) -> TreewiseResult:
    """Emulate the tree-wise traversal, honestly paying its enumeration cost.

    Every visited plan tree inserts all of its internal nodes' structural
    strings into a hash table (that is the duplicated work the paper
    describes — equal spans with different internal structure hash apart
    and the same denominator subtree is revisited millions of times).
    """
    started = time.perf_counter()
    result = TreewiseResult()
    result.plans_total = program_plan_count(chains)
    table: dict[str, int] = {}
    for normalized in chains.statements:
        sites = chains.sites_of_statement(normalized.index)
        if not sites:
            continue
        per_site_trees = [_site_trees(site) for site in sites]
        remaining = plan_budget - result.plans_visited
        visited = _visit_cross_product(per_site_trees, table, remaining)
        result.plans_visited += visited
        if result.plans_visited >= plan_budget:
            result.budget_exceeded = True
            break
    result.subtree_table_size = len(table)
    result.table = table
    if result.budget_exceeded and raise_on_budget:
        raise SearchBudgetExceeded(
            f"tree-wise search exceeded its budget of {plan_budget} plans "
            f"(the program has {result.plans_total} plan trees)",
            explored=result.plans_visited)
    if not result.budget_exceeded:
        # Same redundancy as the block-wise search, found the slow way.
        blockwise = blockwise_search(chains)
        result.options = blockwise.options
        result.windows_visited = blockwise.windows_visited
        result.hash_entries = blockwise.hash_entries
    result.wall_seconds = time.perf_counter() - started
    return result


def _site_trees(site: ChainSite, cap: int = 200_000) -> list[tuple[str, tuple[str, ...]]]:
    """All plan trees of one chain: (root string, internal-node strings).

    Capped defensively; a single site hitting the cap will push the cross
    product over any realistic plan budget anyway.
    """
    tokens = site.tokens()

    def trees(i: int, j: int) -> list[tuple[str, tuple[str, ...]]]:
        if i == j:
            return [(tokens[i], ())]
        variants: list[tuple[str, tuple[str, ...]]] = []
        for k in range(i, j):
            for left_str, left_nodes in trees(i, k):
                for right_str, right_nodes in trees(k + 1, j):
                    direct = f"({left_str}.{right_str})"
                    variants.append((direct, left_nodes + right_nodes + (direct,)))
                    via_t = f"t(t{right_str}.t{left_str})"
                    variants.append((via_t, left_nodes + right_nodes + (via_t,)))
                    if len(variants) >= cap:
                        return variants
        return variants

    return trees(0, len(tokens) - 1)


def _visit_cross_product(per_site_trees: list[list[tuple[str, tuple[str, ...]]]],
                         table: dict[str, int], budget: int) -> int:
    """Visit plan-tree combinations, inserting subtree strings, up to budget."""
    visited = 0
    indexes = [0] * len(per_site_trees)
    sizes = [len(trees) for trees in per_site_trees]
    while visited < budget:
        for site_idx, tree_idx in enumerate(indexes):
            _root, nodes = per_site_trees[site_idx][tree_idx]
            for node in nodes:
                table[node] = table.get(node, 0) + 1
        visited += 1
        # Odometer increment over the cross product.
        position = 0
        while position < len(indexes):
            indexes[position] += 1
            if indexes[position] < sizes[position]:
                break
            indexes[position] = 0
            position += 1
        if position == len(indexes):
            return visited  # full cross product exhausted
    return visited
