"""Sampling-based sparsity estimator (MATFAST-style [32]).

Estimates each input's sparsity from a row sample rather than a full scan,
then propagates with the uniform rules. Cheap (touches a fraction of the
data) but inherits the uniform assumption *and* adds sampling noise —
the other "efficient" estimator family the paper surveys in §4.2.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from ...matrix.blocked import BlockedMatrix
from ...matrix.meta import MatrixMeta
from .metadata import MetadataEstimator


class SamplingEstimator(MetadataEstimator):
    """Uniform propagation seeded with sampled input sparsities."""

    name = "sampling"

    def __init__(self, sample_fraction: float = 0.05, seed: int = 7):
        super().__init__()
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError(f"sample_fraction must be in (0, 1], got {sample_fraction}")
        self.sample_fraction = sample_fraction
        self._rng = np.random.default_rng(seed)

    def sketch_data(self, data, symmetric: bool = False) -> MatrixMeta:
        if isinstance(data, BlockedMatrix):
            dense = None
            rows, cols = data.shape
            sampler = self._sample_blocked
        elif sp.issparse(data):
            dense = None
            rows, cols = data.shape
            sampler = self._sample_sparse
        else:
            dense = np.atleast_2d(np.asarray(data))
            rows, cols = dense.shape
            sampler = None
        take = max(1, int(rows * self.sample_fraction))
        picked = self._rng.choice(rows, size=take, replace=False)
        if sampler is not None:
            sampled_nnz = sampler(data, picked)
        else:
            sampled_nnz = int(np.count_nonzero(dense[picked, :]))
        self.stats_collection_flops += float(take) * cols * self.sample_fraction
        sparsity = sampled_nnz / (take * cols) if take * cols else 0.0
        meta = MatrixMeta(rows, cols, min(1.0, sparsity))
        return meta.with_symmetric(symmetric) if symmetric else meta

    @staticmethod
    def _sample_sparse(matrix, picked: np.ndarray) -> int:
        csr = matrix.tocsr()
        indptr = csr.indptr
        return int(sum(indptr[i + 1] - indptr[i] for i in picked))

    @staticmethod
    def _sample_blocked(matrix: BlockedMatrix, picked: np.ndarray) -> int:
        size = matrix.block_size
        wanted_by_block: dict[int, list[int]] = {}
        for row in picked:
            wanted_by_block.setdefault(row // size, []).append(row % size)
        total = 0
        for (bi, _bj), block in matrix.iter_blocks():
            rows_in_block = wanted_by_block.get(bi)
            if not rows_in_block:
                continue
            if block.is_sparse:
                indptr = block.data.indptr
                total += int(sum(indptr[r + 1] - indptr[r] for r in rows_in_block
                                 if r < block.shape[0]))
            else:
                valid = [r for r in rows_in_block if r < block.shape[0]]
                if valid:
                    total += int(np.count_nonzero(block.data[valid, :]))
        return total
