"""Density-map sparsity estimator (SpMacho / Kernert et al., EDBT 2015 [19]).

The sketch is a coarse g x g grid of cell densities. A multiply combines
grids with the uniform product rule applied *per grid cell pair*, which
keeps localized structure (a dense corner stays a dense corner). Cheaper to
propagate than MNC's full count vectors but coarser; the paper cites it as
one of the "accurate" estimator family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse as sp

from ...matrix.blocked import BlockedMatrix
from ...matrix.meta import MatrixMeta
from .base import SparsityEstimator

DEFAULT_GRID = 16


@dataclass(frozen=True)
class DensityMapSketch:
    """A g x g density grid over the matrix's cells."""

    rows: int
    cols: int
    grid: np.ndarray  # shape (g, g) densities in [0, 1]

    @property
    def sparsity(self) -> float:
        # Grid buckets may be ragged at the edges; at the estimator's level
        # of precision a plain mean is the right readout.
        return float(np.clip(self.grid.mean(), 0.0, 1.0))


def _bucket_edges(extent: int, buckets: int) -> np.ndarray:
    return np.linspace(0, extent, buckets + 1).astype(np.int64)


class DensityMapEstimator(SparsityEstimator):
    """Grid-of-densities estimator."""

    name = "densitymap"

    def __init__(self, grid_size: int = DEFAULT_GRID):
        super().__init__()
        self.grid_size = grid_size

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def sketch_data(self, data, symmetric: bool = False) -> DensityMapSketch:
        if isinstance(data, BlockedMatrix):
            matrix = sp.csr_matrix(data.to_numpy()) if data.sparsity > 0.4 else \
                sp.csr_matrix(data.to_numpy())
        elif sp.issparse(data):
            matrix = data.tocsr()
        else:
            matrix = sp.csr_matrix(np.atleast_2d(np.asarray(data)))
        rows, cols = matrix.shape
        g = min(self.grid_size, rows, cols) or 1
        coo = matrix.tocoo()
        self.stats_collection_flops += 2.0 * coo.nnz
        row_edges = _bucket_edges(rows, g)
        col_edges = _bucket_edges(cols, g)
        row_bucket = np.searchsorted(row_edges, coo.row, side="right") - 1
        col_bucket = np.searchsorted(col_edges, coo.col, side="right") - 1
        counts = np.zeros((g, g))
        np.add.at(counts, (row_bucket, col_bucket), 1.0)
        heights = np.diff(row_edges).astype(np.float64)
        widths = np.diff(col_edges).astype(np.float64)
        areas = np.outer(heights, widths)
        areas[areas == 0] = 1.0
        return DensityMapSketch(rows, cols, np.clip(counts / areas, 0.0, 1.0))

    def sketch_meta(self, meta: MatrixMeta) -> DensityMapSketch:
        g = min(self.grid_size, meta.rows, meta.cols) or 1
        return DensityMapSketch(meta.rows, meta.cols,
                                np.full((g, g), meta.sparsity))

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def _align(self, left: DensityMapSketch,
               right: DensityMapSketch) -> tuple[np.ndarray, np.ndarray]:
        g = max(left.grid.shape[0], right.grid.shape[0])
        return _resample(left.grid, g), _resample(right.grid, g)

    def matmul(self, left: DensityMapSketch, right: DensityMapSketch) -> DensityMapSketch:
        if left.cols != right.rows:
            raise ValueError(f"matmul shape mismatch: {left.cols} vs {right.rows}")
        a, b = self._align(left, right)
        g = a.shape[0]
        inner_per_bucket = left.cols / g
        # P(cell zero) = prod_j (1 - dA*dB)^(inner cells in bucket j)
        log_zero = np.zeros((g, g))
        for j in range(g):
            pair = np.outer(a[:, j], b[j, :])
            log_zero += inner_per_bucket * np.log1p(-np.clip(pair, 0.0, 1.0 - 1e-12))
        density = -np.expm1(log_zero)
        return DensityMapSketch(left.rows, right.cols, np.clip(density, 0.0, 1.0))

    def transpose(self, operand: DensityMapSketch) -> DensityMapSketch:
        return DensityMapSketch(operand.cols, operand.rows, operand.grid.T.copy())

    def add(self, left: DensityMapSketch, right: DensityMapSketch) -> DensityMapSketch:
        left, right = self._broadcast(left, right)
        a, b = self._align(left, right)
        return DensityMapSketch(left.rows, left.cols, a + b - a * b)

    def multiply(self, left: DensityMapSketch, right: DensityMapSketch) -> DensityMapSketch:
        if left.rows == 1 and left.cols == 1:
            return right
        if right.rows == 1 and right.cols == 1:
            return left
        a, b = self._align(left, right)
        return DensityMapSketch(left.rows, left.cols, a * b)

    def scalar_op(self, operand: DensityMapSketch, preserves_zero: bool) -> DensityMapSketch:
        if preserves_zero:
            return operand
        return DensityMapSketch(operand.rows, operand.cols,
                                np.ones_like(operand.grid))

    def _broadcast(self, left: DensityMapSketch,
                   right: DensityMapSketch) -> tuple[DensityMapSketch, DensityMapSketch]:
        if left.rows == 1 and left.cols == 1 and (right.rows, right.cols) != (1, 1):
            return self.sketch_meta(MatrixMeta(right.rows, right.cols, 1.0)), right
        if right.rows == 1 and right.cols == 1 and (left.rows, left.cols) != (1, 1):
            return left, self.sketch_meta(MatrixMeta(left.rows, left.cols, 1.0))
        return left, right

    def meta(self, sketch: DensityMapSketch) -> MatrixMeta:
        return MatrixMeta(sketch.rows, sketch.cols, sketch.sparsity)


def _resample(grid: np.ndarray, size: int) -> np.ndarray:
    """Nearest-neighbour resample of a square density grid."""
    current = grid.shape[0]
    if current == size:
        return grid
    idx = (np.arange(size) * current // size).clip(0, current - 1)
    return grid[np.ix_(idx, idx)]
