"""Exact sparsity oracle: propagates the true boolean support.

Prohibitively expensive in a real optimizer — it *computes* every
intermediate's support — but invaluable as a testing oracle: estimator
tests compare MNC/metadata/density-map answers to this one, and the
"perfect estimator" ablation benchmarks use it to isolate how much plan
quality the estimators give up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse as sp

from ...matrix.blocked import BlockedMatrix
from ...matrix.meta import MatrixMeta
from .base import SparsityEstimator


@dataclass(frozen=True)
class ExactSketch:
    """The true boolean support of a matrix."""

    support: sp.csr_matrix  # boolean CSR

    @property
    def shape(self) -> tuple[int, int]:
        return self.support.shape

    @property
    def sparsity(self) -> float:
        rows, cols = self.support.shape
        cells = rows * cols
        return self.support.nnz / cells if cells else 0.0


def _as_bool_csr(data) -> sp.csr_matrix:
    if isinstance(data, BlockedMatrix):
        data = data.to_numpy()
    if sp.issparse(data):
        matrix = data.tocsr().astype(bool)
    else:
        matrix = sp.csr_matrix(np.atleast_2d(np.asarray(data)) != 0)
    matrix.eliminate_zeros()
    return matrix.astype(bool)


class ExactEstimator(SparsityEstimator):
    """Oracle estimator over true supports."""

    name = "exact"

    def sketch_data(self, data, symmetric: bool = False) -> ExactSketch:
        support = _as_bool_csr(data)
        self.stats_collection_flops += float(support.nnz)
        return ExactSketch(support)

    def sketch_meta(self, meta: MatrixMeta) -> ExactSketch:
        # Without data we can only fabricate a uniform support with the
        # right nnz; deterministic so plans are reproducible.
        rng = np.random.default_rng(meta.rows * 2654435761 + meta.cols)
        support = sp.random(meta.rows, meta.cols, density=min(1.0, meta.sparsity),
                            format="csr", random_state=rng, dtype=np.float64)
        return ExactSketch(support.astype(bool))

    def matmul(self, left: ExactSketch, right: ExactSketch) -> ExactSketch:
        product = (left.support.astype(np.int8) @ right.support.astype(np.int8))
        return ExactSketch(product.astype(bool).tocsr())

    def transpose(self, operand: ExactSketch) -> ExactSketch:
        return ExactSketch(operand.support.T.tocsr())

    def add(self, left: ExactSketch, right: ExactSketch) -> ExactSketch:
        left, right = self._broadcast(left, right)
        return ExactSketch((left.support + right.support).astype(bool).tocsr())

    def multiply(self, left: ExactSketch, right: ExactSketch) -> ExactSketch:
        if left.shape == (1, 1):
            return right
        if right.shape == (1, 1):
            return left
        return ExactSketch(left.support.multiply(right.support).astype(bool).tocsr())

    def scalar_op(self, operand: ExactSketch, preserves_zero: bool) -> ExactSketch:
        if preserves_zero:
            return operand
        rows, cols = operand.shape
        return ExactSketch(sp.csr_matrix(np.ones((rows, cols), dtype=bool)))

    def _broadcast(self, left: ExactSketch, right: ExactSketch) -> tuple[ExactSketch, ExactSketch]:
        if left.shape == (1, 1) and right.shape != (1, 1):
            rows, cols = right.shape
            return ExactSketch(sp.csr_matrix(np.ones((rows, cols), dtype=bool))), right
        if right.shape == (1, 1) and left.shape != (1, 1):
            rows, cols = left.shape
            return left, ExactSketch(sp.csr_matrix(np.ones((rows, cols), dtype=bool)))
        return left, right

    def meta(self, sketch: ExactSketch) -> MatrixMeta:
        rows, cols = sketch.shape
        return MatrixMeta(rows, cols, sketch.sparsity)
