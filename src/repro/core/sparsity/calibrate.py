"""Observation-calibrated sparsity estimation (the replan feedback loop).

The paper's adaptive selection (Fig. 9) re-picks operators when observed
statistics diverge from estimates. On this substrate the observations come
from the execution tracer: every operator span records the *actual*
``MatrixMeta`` of its operands and output. :class:`CalibrationState`
distills those spans into a lookup table keyed by (operator, operand
metas); :class:`CalibratedEstimator` wraps any concrete estimator and, when
a propagation step matches an observed product exactly, replaces the
estimate with the observation.

The wrapper is compositional: it corrects only the *output metadata* of a
matched step (via the inner estimator's own ``sketch_meta``), so MNC keeps
its structural sketches, the metadata estimator keeps plain metas, and
unmatched propagations are untouched. A :class:`~repro.core.sparsity.memo.
MemoizedEstimator` can wrap a calibrated estimator exactly like any other.

Calibration is part of a plan's identity: :class:`~repro.config.
OptimizerConfig` carries the state in its ``calibration`` field, which
enters the plan-cache fingerprint through the config text, so a replan
compiled under observations can never collide with the original plan (and
two replans under the same observations share a cache entry).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...matrix.meta import MatrixMeta
from .base import Sketch, SparsityEstimator

#: Operand nnz values are rounded to this many decimals when forming keys,
#: so float noise in density bookkeeping cannot miss an exact match.
_NNZ_DECIMALS = 3

#: (rows, cols, rounded nnz) of one operand or output.
MetaKey = tuple[int, int, float]


def _meta_key(meta: MatrixMeta) -> MetaKey:
    return (meta.rows, meta.cols, round(meta.nnz, _NNZ_DECIMALS))


@dataclass(frozen=True)
class CalibrationState:
    """Observed operator outputs, keyed by operator kind and operand metas.

    ``entries`` is a sorted tuple of ``(key, (rows, cols, nnz))`` pairs
    where ``key = (op, left_meta_key, right_meta_key)``; being a frozen
    value object with a deterministic repr, the state is hashable and
    fingerprint-stable (the plan cache reprs it verbatim).
    """

    entries: tuple[tuple[tuple, tuple[int, int, float]], ...] = ()

    def __post_init__(self) -> None:
        # Normalize ordering so equal observation sets compare (and
        # fingerprint) equal regardless of construction order.
        object.__setattr__(self, "entries", tuple(sorted(self.entries)))

    def __len__(self) -> int:
        return len(self.entries)

    def lookup(self, op: str, left: MatrixMeta,
               right: MatrixMeta) -> MatrixMeta | None:
        """The observed output meta of ``op(left, right)``, if recorded."""
        table = self._table()
        observed = table.get((op, _meta_key(left), _meta_key(right)))
        if observed is None:
            return None
        rows, cols, nnz = observed
        area = rows * cols
        return MatrixMeta(rows, cols, nnz / area if area else 0.0)

    def _table(self) -> dict:
        # Built lazily and cached outside the frozen fields (pure function
        # of ``entries``, so mutation-after-construction is not a hazard).
        table = self.__dict__.get("_lookup_table")
        if table is None:
            table = dict(self.entries)
            self.__dict__["_lookup_table"] = table
        return table

    @classmethod
    def from_spans(cls, spans: list[dict]) -> "CalibrationState":
        """Build a state from execution-tracer spans.

        Binary ``matmul`` operator spans carry the effective operand metas
        the kernel priced and the actual output meta; later observations of
        the same (operator, operands) key win, so a drifting site converges
        to its most recent truth.
        """
        table: dict[tuple, tuple[int, int, float]] = {}
        for span in spans:
            if span.get("span") != "operator" or span.get("op") != "matmul":
                continue
            operands = span.get("operands") or ()
            out = span.get("out")
            if len(operands) != 2 or out is None:
                continue
            key = ("matmul",
                   (operands[0]["rows"], operands[0]["cols"],
                    round(operands[0]["nnz"], _NNZ_DECIMALS)),
                   (operands[1]["rows"], operands[1]["cols"],
                    round(operands[1]["nnz"], _NNZ_DECIMALS)))
            table[key] = (out["rows"], out["cols"],
                          round(out["nnz"], _NNZ_DECIMALS))
        return cls(entries=tuple(table.items()))


class CalibratedEstimator(SparsityEstimator):
    """Wrap an estimator, overriding outputs the calibration observed.

    Only ``matmul`` is corrected — products are where the uniform-collision
    assumption misleads the cost model (§4.2); unary and cell-wise
    propagations keep the inner estimator's behaviour byte-for-byte.
    """

    def __init__(self, inner: SparsityEstimator, calibration: CalibrationState):
        if isinstance(inner, CalibratedEstimator):  # never stack two layers
            inner = inner.inner
        self.inner = inner
        self.calibration = calibration

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"{self.inner.name}+calibrated"

    @property
    def stats_collection_flops(self) -> float:  # type: ignore[override]
        return self.inner.stats_collection_flops

    # ------------------------------------------------------------------
    # Sketch construction / readout: pure delegation
    # ------------------------------------------------------------------
    def sketch_data(self, data, symmetric: bool = False) -> Sketch:
        return self.inner.sketch_data(data, symmetric=symmetric)

    def sketch_meta(self, meta: MatrixMeta) -> Sketch:
        return self.inner.sketch_meta(meta)

    def scalar(self) -> Sketch:
        return self.inner.scalar()

    def meta(self, sketch: Sketch) -> MatrixMeta:
        return self.inner.meta(sketch)

    # ------------------------------------------------------------------
    # Operator propagation
    # ------------------------------------------------------------------
    def matmul(self, left: Sketch, right: Sketch) -> Sketch:
        estimated = self.inner.matmul(left, right)
        observed = self.calibration.lookup(
            "matmul", self.inner.meta(left), self.inner.meta(right))
        if observed is None:
            return estimated
        out_meta = self.inner.meta(estimated)
        if (out_meta.rows, out_meta.cols) != (observed.rows, observed.cols):
            return estimated  # shape disagreement: trust the estimator
        return self.inner.sketch_meta(observed)

    def transpose(self, operand: Sketch) -> Sketch:
        return self.inner.transpose(operand)

    def add(self, left: Sketch, right: Sketch) -> Sketch:
        return self.inner.add(left, right)

    def subtract(self, left: Sketch, right: Sketch) -> Sketch:
        return self.inner.subtract(left, right)

    def multiply(self, left: Sketch, right: Sketch) -> Sketch:
        return self.inner.multiply(left, right)

    def divide(self, left: Sketch, right: Sketch) -> Sketch:
        return self.inner.divide(left, right)

    def scalar_op(self, operand: Sketch, preserves_zero: bool) -> Sketch:
        return self.inner.scalar_op(operand, preserves_zero=preserves_zero)
