"""Metadata-based sparsity estimator (SystemDS's default, [10]).

Assumes uniformly distributed non-zeros and derives output sparsity solely
from input sparsities and shapes — zero estimation cost, but blind to
structure (skew), which is how it can "mislead ReMac to a suboptimal
combination of elimination options" (§4.2). The sketch is simply a
:class:`~repro.matrix.meta.MatrixMeta`.
"""

from __future__ import annotations

from ...matrix import sparsity_rules as rules
from ...matrix.meta import MatrixMeta
from .base import SparsityEstimator, observed_meta


class MetadataEstimator(SparsityEstimator):
    """Uniform-assumption estimator: sketch == MatrixMeta."""

    name = "metadata"

    def sketch_data(self, data, symmetric: bool = False) -> MatrixMeta:
        meta = observed_meta(data)
        return meta.with_symmetric(symmetric) if symmetric else meta

    def sketch_meta(self, meta: MatrixMeta) -> MatrixMeta:
        return meta

    def matmul(self, left: MatrixMeta, right: MatrixMeta) -> MatrixMeta:
        rows, cols = left.matmul_shape(right)
        sparsity = rules.matmul_sparsity(left.sparsity, right.sparsity, left.cols)
        return MatrixMeta(rows, cols, sparsity)

    def transpose(self, operand: MatrixMeta) -> MatrixMeta:
        return operand.transposed()

    def add(self, left: MatrixMeta, right: MatrixMeta) -> MatrixMeta:
        rows, cols = left.ewise_shape(right)
        if left.is_scalar_like or right.is_scalar_like:
            return MatrixMeta(rows, cols, 1.0)
        return MatrixMeta(rows, cols, rules.add_sparsity(left.sparsity, right.sparsity))

    def multiply(self, left: MatrixMeta, right: MatrixMeta) -> MatrixMeta:
        rows, cols = left.ewise_shape(right)
        if left.is_scalar_like and not right.is_scalar_like:
            return MatrixMeta(rows, cols, right.sparsity)
        if right.is_scalar_like and not left.is_scalar_like:
            return MatrixMeta(rows, cols, left.sparsity)
        return MatrixMeta(rows, cols, rules.mul_sparsity(left.sparsity, right.sparsity))

    def scalar_op(self, operand: MatrixMeta, preserves_zero: bool) -> MatrixMeta:
        return operand.with_sparsity(
            rules.scalar_op_sparsity(operand.sparsity, preserves_zero))

    def meta(self, sketch: MatrixMeta) -> MatrixMeta:
        return sketch
