"""Sketch-propagation memo: identity-keyed caching around any estimator.

One ``compile()`` prices the same logical subexpressions hundreds of times:
every candidate program, every adaptive fixpoint round, and every span table
re-derives sketches from the *same* input sketch objects through the *same*
operator applications. :class:`MemoizedEstimator` wraps a concrete estimator
and caches operator propagation by operand identity, so repeated derivations
return the shared cached sketch object instead of recomputing (and — because
outputs are shared — chains of operators hit the memo transitively, which is
what makes the cost model's identity-keyed price memo effective).

Identity keys are safe here because sketches are immutable value objects and
every memo entry keeps strong references to its operands, so an ``id`` can
never be recycled while its entry is alive. The memo's lifetime is one
:class:`~repro.core.cost.model.CostModel` (one compilation), bounding memory.

Estimator operators are pure, so memoization is purely a performance layer:
cached and recomputed sketches are the same object graph, never merely
similar. Under the optional pricing thread pool two workers may race to fill
the same slot; the loser's result is dropped, which only costs the duplicate
computation (dict reads/writes are atomic in CPython).
"""

from __future__ import annotations

from typing import Any

from ...matrix.meta import MatrixMeta
from .base import Sketch, SparsityEstimator


class MemoizedEstimator(SparsityEstimator):
    """Wrap an estimator, memoizing operator propagation by operand identity."""

    def __init__(self, inner: SparsityEstimator):
        if isinstance(inner, MemoizedEstimator):  # never stack two layers
            inner = inner.inner
        self.inner = inner
        #: op-key -> (operand refs..., result). Refs pin operand ids.
        self._ops: dict[tuple, tuple] = {}
        #: id(sketch) -> (sketch, meta)
        self._metas: dict[int, tuple[Sketch, MatrixMeta]] = {}
        #: MatrixMeta -> sketch (metas are hashable value objects)
        self._meta_sketches: dict[MatrixMeta, Sketch] = {}
        self._scalar: Sketch | None = None
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Delegation plumbing
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:  # type: ignore[override]
        return self.inner.name

    @property
    def stats_collection_flops(self) -> float:  # type: ignore[override]
        return self.inner.stats_collection_flops

    @property
    def calibration(self):
        """The wrapped estimator's :class:`~repro.core.sparsity.calibrate.
        CalibrationState`, or None when the inner estimator is uncalibrated.
        Memoization composes with calibrated re-entry: cache keys are sketch
        identities, and a calibrated estimator returns *different* sketch
        objects for corrected products, so corrected and uncorrected
        propagations can never share a memo entry."""
        return getattr(self.inner, "calibration", None)

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss counters for compile-stats reporting."""
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._ops)}

    # ------------------------------------------------------------------
    # Sketch construction (no memo: inputs are sketched once per compile)
    # ------------------------------------------------------------------
    def sketch_data(self, data, symmetric: bool = False) -> Sketch:
        return self.inner.sketch_data(data, symmetric=symmetric)

    def sketch_meta(self, meta: MatrixMeta) -> Sketch:
        cached = self._meta_sketches.get(meta)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        sketch = self.inner.sketch_meta(meta)
        self._meta_sketches[meta] = sketch
        return sketch

    def scalar(self) -> Sketch:
        if self._scalar is None:
            self._scalar = self.inner.scalar()
        return self._scalar

    # ------------------------------------------------------------------
    # Memoized operator propagation
    # ------------------------------------------------------------------
    def _binary(self, op: str, compute, left: Sketch, right: Sketch) -> Sketch:
        key = (op, id(left), id(right))
        entry = self._ops.get(key)
        if entry is not None:
            self.hits += 1
            return entry[-1]
        self.misses += 1
        out = compute(left, right)
        self._ops[key] = (left, right, out)
        return out

    def _unary(self, op: str, compute, operand: Sketch, *flags: Any) -> Sketch:
        key = (op, id(operand), *flags)
        entry = self._ops.get(key)
        if entry is not None:
            self.hits += 1
            return entry[-1]
        self.misses += 1
        out = compute(operand)
        self._ops[key] = (operand, out)
        return out

    def matmul(self, left: Sketch, right: Sketch) -> Sketch:
        return self._binary("matmul", self.inner.matmul, left, right)

    def transpose(self, operand: Sketch) -> Sketch:
        return self._unary("transpose", self.inner.transpose, operand)

    def add(self, left: Sketch, right: Sketch) -> Sketch:
        return self._binary("add", self.inner.add, left, right)

    def subtract(self, left: Sketch, right: Sketch) -> Sketch:
        return self._binary("subtract", self.inner.subtract, left, right)

    def multiply(self, left: Sketch, right: Sketch) -> Sketch:
        return self._binary("multiply", self.inner.multiply, left, right)

    def divide(self, left: Sketch, right: Sketch) -> Sketch:
        return self._binary("divide", self.inner.divide, left, right)

    def ewise(self, kind: str, left: Sketch, right: Sketch) -> Sketch:
        """Kind-dispatched cell-wise propagation (used by fused regions).

        Routes through the memoized per-kind methods so a fused region's
        sketch chain shares cache entries with the identical unfused
        member propagations — fusion changes pricing, never sketches.
        """
        combine = {"add": self.add, "subtract": self.subtract,
                   "multiply": self.multiply, "divide": self.divide}[kind]
        return combine(left, right)

    def scalar_op(self, operand: Sketch, preserves_zero: bool) -> Sketch:
        return self._unary(
            "scalar_op",
            lambda s: self.inner.scalar_op(s, preserves_zero=preserves_zero),
            operand, preserves_zero)

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------
    def meta(self, sketch: Sketch) -> MatrixMeta:
        entry = self._metas.get(id(sketch))
        if entry is not None and entry[0] is sketch:
            self.hits += 1
            return entry[1]
        self.misses += 1
        meta = self.inner.meta(sketch)
        self._metas[id(sketch)] = (sketch, meta)
        return meta
