"""Sparsity estimators: metadata, MNC, density map, sampling, exact oracle."""

from __future__ import annotations

from .base import Sketch, SparsityEstimator, observed_meta, to_support_arrays
from .calibrate import CalibratedEstimator, CalibrationState
from .densitymap import DensityMapEstimator, DensityMapSketch
from .exact import ExactEstimator, ExactSketch
from .memo import MemoizedEstimator
from .metadata import MetadataEstimator
from .mnc import MNCEstimator, MNCSketch
from .sampling import SamplingEstimator

_ESTIMATORS = {
    "metadata": MetadataEstimator,
    "mnc": MNCEstimator,
    "densitymap": DensityMapEstimator,
    "sampling": SamplingEstimator,
    "exact": ExactEstimator,
}


def make_estimator(name: str, **kwargs) -> SparsityEstimator:
    """Instantiate an estimator by config name."""
    try:
        return _ESTIMATORS[name](**kwargs)
    except KeyError:
        known = ", ".join(sorted(_ESTIMATORS))
        raise ValueError(f"unknown sparsity estimator {name!r}; known: {known}") from None


__all__ = [
    "Sketch", "SparsityEstimator", "observed_meta", "to_support_arrays",
    "MetadataEstimator", "MNCEstimator", "MNCSketch",
    "DensityMapEstimator", "DensityMapSketch",
    "SamplingEstimator", "ExactEstimator", "ExactSketch",
    "MemoizedEstimator", "make_estimator",
    "CalibratedEstimator", "CalibrationState",
]
