"""Sparsity estimator interface.

The cost model's accuracy hinges on output-sparsity estimates (§4.2: "the
matrix sparsity directly decides FLOP_O in compute_O and D_pr in
transmit_O"). Estimators trade accuracy for estimation cost; the paper
evaluates the metadata-based estimator (fast, uniform assumption) against
MNC (structure-exploiting sketches that must be collected from the data).

Each estimator works on its own *sketch* type. A sketch always exposes the
resulting :class:`~repro.matrix.meta.MatrixMeta` via :meth:`SparsityEstimator.
meta`; richer estimators carry per-row/column structure through operators.

``stats_collection_flops`` accumulates the work spent scanning input data to
build sketches — the optimizer charges it to compilation time, reproducing
MNC's "additional operations to collect necessary statistics" overhead.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np
from scipy import sparse

from ...matrix.blocked import BlockedMatrix
from ...matrix.meta import MatrixMeta

Sketch = Any


class SparsityEstimator(ABC):
    """Propagates sparsity (and possibly structure) through operators."""

    #: Short name used in configs and benchmark labels.
    name: str = "base"

    def __init__(self) -> None:
        #: FLOPs spent scanning data for statistics (charged to compilation).
        self.stats_collection_flops: float = 0.0

    # ------------------------------------------------------------------
    # Sketch construction
    # ------------------------------------------------------------------
    @abstractmethod
    def sketch_data(self, data, symmetric: bool = False) -> Sketch:
        """Build a sketch from actual matrix data."""

    @abstractmethod
    def sketch_meta(self, meta: MatrixMeta) -> Sketch:
        """Build a sketch from metadata alone (no data available)."""

    def scalar(self) -> Sketch:
        """Sketch of a dense scalar (1x1)."""
        return self.sketch_meta(MatrixMeta(1, 1, 1.0))

    # ------------------------------------------------------------------
    # Operator propagation
    # ------------------------------------------------------------------
    @abstractmethod
    def matmul(self, left: Sketch, right: Sketch) -> Sketch: ...

    @abstractmethod
    def transpose(self, operand: Sketch) -> Sketch: ...

    @abstractmethod
    def add(self, left: Sketch, right: Sketch) -> Sketch: ...

    @abstractmethod
    def multiply(self, left: Sketch, right: Sketch) -> Sketch: ...

    def subtract(self, left: Sketch, right: Sketch) -> Sketch:
        """Support-wise, subtraction behaves like addition (union)."""
        return self.add(left, right)

    def divide(self, left: Sketch, right: Sketch) -> Sketch:
        """Division keeps the numerator support (denominators are dense)."""
        del right
        return left

    @abstractmethod
    def scalar_op(self, operand: Sketch, preserves_zero: bool) -> Sketch:
        """Cell-wise combination with a scalar (x*c keeps zeros, x+c does not)."""

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------
    @abstractmethod
    def meta(self, sketch: Sketch) -> MatrixMeta:
        """The estimated metadata of a sketch."""


def to_support_arrays(data) -> tuple[int, int, np.ndarray, np.ndarray, int]:
    """Row/column non-zero counts of any accepted matrix input.

    Returns (rows, cols, row_counts, col_counts, nnz). This is the single
    scan that structure-exploiting estimators pay for.
    """
    if isinstance(data, BlockedMatrix):
        rows, cols = data.shape
        row_counts = np.zeros(rows, dtype=np.int64)
        col_counts = np.zeros(cols, dtype=np.int64)
        size = data.block_size
        for (bi, bj), block in data.iter_blocks():
            payload = block.data
            if sparse.issparse(payload):
                coo = payload.tocoo()
                np.add.at(row_counts, bi * size + coo.row, 1)
                np.add.at(col_counts, bj * size + coo.col, 1)
            else:
                mask = payload != 0
                row_counts[bi * size:bi * size + payload.shape[0]] += mask.sum(axis=1)
                col_counts[bj * size:bj * size + payload.shape[1]] += mask.sum(axis=0)
        return rows, cols, row_counts, col_counts, int(row_counts.sum())
    if sparse.issparse(data):
        csr = data.tocsr()
        rows, cols = csr.shape
        row_counts = np.diff(csr.indptr).astype(np.int64)
        col_counts = np.bincount(csr.indices, minlength=cols).astype(np.int64)
        return rows, cols, row_counts, col_counts, int(csr.nnz)
    array = np.atleast_2d(np.asarray(data))
    mask = array != 0
    rows, cols = array.shape
    return rows, cols, mask.sum(axis=1).astype(np.int64), \
        mask.sum(axis=0).astype(np.int64), int(mask.sum())


def observed_meta(data) -> MatrixMeta:
    """Observed MatrixMeta of any accepted matrix input."""
    rows, cols, _row_counts, _col_counts, nnz = to_support_arrays(data)
    return MatrixMeta(rows, cols, nnz / (rows * cols) if rows * cols else 0.0)
