"""MNC: matrix non-zero count sketches (Sommer et al., SIGMOD 2019 [27]).

The sketch of a matrix is its exact per-row and per-column non-zero count
vectors (h^r, h^c). Operators propagate these counts: a multiply pairs
column counts of the left with row counts of the right over the shared
inner dimension, applying a birthday-style collision correction (the "Edm"
expectation the paper's footnote selects). Unlike the metadata estimator,
MNC *sees skew*: a Zipf-distributed matrix concentrates its counts in few
rows/columns, producing much denser product estimates for the hot rows —
exactly the effect behind the zipf-2.1/2.8 plan changes in §6.5.

Building a sketch requires one pass over the data; that work accumulates in
``stats_collection_flops`` and the optimizer bills it to compilation time,
reproducing MNC's estimation overhead in Fig. 10(a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...matrix.meta import MatrixMeta
from .base import SparsityEstimator, to_support_arrays


@dataclass(frozen=True)
class MNCSketch:
    """Row/column non-zero count vectors of a matrix."""

    rows: int
    cols: int
    row_counts: np.ndarray  # shape (rows,), float64 expected counts
    col_counts: np.ndarray  # shape (cols,)

    @property
    def nnz(self) -> float:
        return float(self.row_counts.sum())

    @property
    def sparsity(self) -> float:
        cells = self.rows * self.cols
        return min(1.0, self.nnz / cells) if cells else 0.0


def _collision_correct(candidates: np.ndarray | float, capacity: float):
    """Expected distinct cells hit by ``candidates`` uniform throws.

    ``capacity * (1 - (1 - 1/capacity)^candidates)`` — the same correction
    MNC applies when candidate non-zero pairs may collide in one output
    cell.
    """
    if capacity <= 0:
        return 0.0
    scaled = np.minimum(np.asarray(candidates, dtype=np.float64), 1e18)
    if capacity <= 1.0:
        return np.minimum(scaled, capacity)
    return capacity * (-np.expm1(scaled * np.log1p(-1.0 / capacity)))


class MNCEstimator(SparsityEstimator):
    """Structure-exploiting estimator over non-zero count sketches."""

    name = "mnc"

    def sketch_data(self, data, symmetric: bool = False) -> MNCSketch:
        rows, cols, row_counts, col_counts, nnz = to_support_arrays(data)
        # One full scan of the data plus histogram aggregation.
        self.stats_collection_flops += 2.0 * nnz + rows + cols
        return MNCSketch(rows, cols, row_counts.astype(np.float64),
                         col_counts.astype(np.float64))

    def sketch_meta(self, meta: MatrixMeta) -> MNCSketch:
        row_counts = np.full(meta.rows, meta.sparsity * meta.cols)
        col_counts = np.full(meta.cols, meta.sparsity * meta.rows)
        return MNCSketch(meta.rows, meta.cols, row_counts, col_counts)

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def matmul(self, left: MNCSketch, right: MNCSketch) -> MNCSketch:
        if left.cols != right.rows:
            raise ValueError(f"matmul shape mismatch: {left.cols} vs {right.rows}")
        # Candidate non-zero products per inner index j: every non-zero in
        # column j of the left meets every non-zero in row j of the right.
        candidates_per_inner = left.col_counts * right.row_counts
        total_candidates = float(candidates_per_inner.sum())
        left_nnz = max(left.nnz, 1e-12)
        right_nnz = max(right.nnz, 1e-12)
        # Apportion candidates to output rows proportionally to the left's
        # row counts (row i contributes h^r_L[i]/nnz_L of the pairings),
        # then correct for collisions within each output row of width cols.
        row_candidates = left.row_counts * (total_candidates / left_nnz)
        col_candidates = right.col_counts * (total_candidates / right_nnz)
        row_counts = _collision_correct(row_candidates, float(right.cols))
        col_counts = _collision_correct(col_candidates, float(left.rows))
        # Keep the two marginals consistent: scale columns to the row total.
        row_total = float(np.sum(row_counts))
        col_total = float(np.sum(col_counts))
        if col_total > 0:
            col_counts = col_counts * (row_total / col_total)
        return MNCSketch(left.rows, right.cols, row_counts, col_counts)

    def transpose(self, operand: MNCSketch) -> MNCSketch:
        return MNCSketch(operand.cols, operand.rows,
                         operand.col_counts, operand.row_counts)

    def add(self, left: MNCSketch, right: MNCSketch) -> MNCSketch:
        left, right = self._broadcast(left, right)
        row_counts = np.minimum(left.row_counts + right.row_counts, left.cols)
        col_counts = np.minimum(left.col_counts + right.col_counts, left.rows)
        return MNCSketch(left.rows, left.cols, row_counts, col_counts)

    def multiply(self, left: MNCSketch, right: MNCSketch) -> MNCSketch:
        if left.rows == 1 and left.cols == 1:
            return right
        if right.rows == 1 and right.cols == 1:
            return left
        # Intersection under uniformity within each row/column.
        row_counts = left.row_counts * right.row_counts / max(left.cols, 1)
        col_counts = left.col_counts * right.col_counts / max(left.rows, 1)
        return MNCSketch(left.rows, left.cols, row_counts, col_counts)

    def scalar_op(self, operand: MNCSketch, preserves_zero: bool) -> MNCSketch:
        if preserves_zero:
            return operand
        return MNCSketch(operand.rows, operand.cols,
                         np.full(operand.rows, float(operand.cols)),
                         np.full(operand.cols, float(operand.rows)))

    def _broadcast(self, left: MNCSketch, right: MNCSketch) -> tuple[MNCSketch, MNCSketch]:
        """Expand a 1x1 sketch to the other operand's shape (dense)."""
        if left.rows == 1 and left.cols == 1 and (right.rows, right.cols) != (1, 1):
            dense = self.sketch_meta(MatrixMeta(right.rows, right.cols, 1.0))
            return dense, right
        if right.rows == 1 and right.cols == 1 and (left.rows, left.cols) != (1, 1):
            dense = self.sketch_meta(MatrixMeta(left.rows, left.cols, 1.0))
            return left, dense
        return left, right

    def meta(self, sketch: MNCSketch) -> MatrixMeta:
        return MatrixMeta(sketch.rows, sketch.cols, sketch.sparsity)
