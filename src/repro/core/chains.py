"""Coordinates and multiplication-chain blocks (§3.2 step ➋, Fig. 4).

After normalization, every statement's expression is a tree whose maximal
matrix-multiplication runs become :class:`ChainSite` blocks. Splitting
happens exactly at operators of lower priority than multiplication (cell-
wise add/sub/mul/div), as the paper prescribes. Every operand occurrence
receives a *global coordinate* — one axis across the whole loop body, as in
Fig. 4 — so elimination options can be described by coordinate spans and
matched across statements.

Each statement keeps a *template*: its expression with every chain replaced
by a :class:`ChainPlaceholder`. The rewriter later splices re-parenthesized
(and temp-substituted) chains back into the template.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import OptimizerError
from ..lang.ast import (
    Add,
    Call,
    Compare,
    ElemDiv,
    ElemMul,
    Expr,
    Literal,
    MatMul,
    MatrixRef,
    Neg,
    ScalarRef,
    Sub,
    Transpose,
)
from ..lang.program import Assign, Program, WhileLoop
from ..lang.typecheck import Environment, infer_expr_meta
from .normalize import normalize, symmetric_names


@dataclass(frozen=True)
class ChainPlaceholder(Expr):
    """Stands in for an extracted chain inside a statement template."""

    site_id: int

    def children(self) -> tuple[Expr, ...]:
        return ()

    def __repr__(self) -> str:
        return f"<chain:{self.site_id}>"


@dataclass(frozen=True)
class Operand:
    """One multiplicative factor of a chain.

    ``base`` is the factor with any transpose stripped; ``transposed`` says
    whether this occurrence uses the transpose. ``symbol`` is the canonical
    token used in hash keys ('A' for a leaf, a structural string for opaque
    sub-expressions). ``symmetric`` marks factors whose transpose equals
    themselves, letting keys drop the flag (§3.2 step ➌).
    """

    base: Expr
    transposed: bool
    symbol: str
    symmetric: bool = False
    loop_constant: bool = False

    def token(self) -> str:
        """Key token of this occurrence: symbol plus orientation."""
        if self.symmetric or not self.transposed:
            return self.symbol
        return self.symbol + "'"

    def flipped(self) -> "Operand":
        """The same factor with the opposite orientation."""
        if self.symmetric:
            return self
        return Operand(self.base, not self.transposed, self.symbol,
                       self.symmetric, self.loop_constant)

    def to_expr(self) -> Expr:
        """AST of this occurrence."""
        if self.transposed and not self.symmetric:
            return Transpose(self.base)
        return self.base


@dataclass
class ChainSite:
    """A maximal multiplication chain occurrence (one block of Fig. 4)."""

    site_id: int
    stmt_index: int
    operands: list[Operand]
    #: Global coordinate of each operand (1-based, program-wide).
    coords: list[int]
    in_loop: bool
    #: 0-based inclusive operand spans that appear as sub-trees of the
    #: original association order (used to classify options as
    #: order-preserving for the conservative strategy).
    original_spans: frozenset[tuple[int, int]] = frozenset()

    def __len__(self) -> int:
        return len(self.operands)

    def tokens(self) -> list[str]:
        return [op.token() for op in self.operands]

    def span_operands(self, start: int, end: int) -> list[Operand]:
        """Operands of the inclusive span [start, end]."""
        return self.operands[start:end + 1]

    def span_loop_constant(self, start: int, end: int) -> bool:
        return self.in_loop and all(op.loop_constant
                                    for op in self.span_operands(start, end))

    def __repr__(self) -> str:
        chain = " ".join(self.tokens())
        return f"ChainSite({self.site_id}@stmt{self.stmt_index}: {chain})"


@dataclass
class NormalizedStatement:
    """One assignment after normalization and chain extraction."""

    index: int
    assign: Assign
    template: Expr
    in_loop: bool
    env_before: Environment


@dataclass
class ProgramChains:
    """The whole program decomposed into templates + chain blocks."""

    program: Program
    statements: list[NormalizedStatement] = field(default_factory=list)
    sites: list[ChainSite] = field(default_factory=list)
    loop: WhileLoop | None = None
    loop_constants: frozenset[str] = frozenset()
    symmetric: frozenset[str] = frozenset()
    iterations: int = 100

    def site(self, site_id: int) -> ChainSite:
        return self.sites[site_id]

    def sites_of_statement(self, stmt_index: int) -> list[ChainSite]:
        return [s for s in self.sites if s.stmt_index == stmt_index]

    def operand_meta(self, site: ChainSite, operand: Operand):
        """Metadata of an operand occurrence under its statement's env."""
        env = self.statements[site.stmt_index].env_before
        meta = infer_expr_meta(operand.base, env)
        return meta.transposed() if operand.transposed and not operand.symmetric else meta

    def variables_reassigned_between(self, first_stmt: int, last_stmt: int) -> set[str]:
        """Targets assigned by statements in the half-open range [first, last).

        Used for same-value checks between two occurrences: the *first*
        occurrence's own assignment counts (it changes what later statements
        read), while the *last* occurrence's does not (an RHS always reads
        the pre-assignment values of its own statement).
        """
        reassigned: set[str] = set()
        for stmt in self.statements:
            if first_stmt <= stmt.index < last_stmt:
                reassigned.add(stmt.assign.target)
        return reassigned

    @property
    def total_coordinates(self) -> int:
        return sum(len(site) for site in self.sites)


def build_chains(program: Program, inputs: Environment,
                 iterations: int | None = None) -> ProgramChains:
    """Normalize ``program`` and extract every chain block with coordinates.

    ``inputs`` provides metadata for program inputs; symmetry declared there
    is trusted throughout the loop (the paper's workloads preserve it).
    """
    loops = program.loops()
    if len(loops) > 1:
        raise OptimizerError("programs with multiple top-level loops are not supported")
    loop = loops[0] if loops else None
    loop_constants = frozenset(program.loop_constant_variables(loop)) if loop else frozenset()
    # Declared symmetry is only trusted when every assignment provably
    # preserves it — otherwise Xᵀ≡X canonicalization would be unsound.
    from .normalize import trusted_symmetric_names
    symmetric = trusted_symmetric_names(program, inputs)

    result = ProgramChains(
        program=program,
        loop=loop,
        loop_constants=loop_constants,
        symmetric=symmetric,
        iterations=iterations if iterations is not None
        else (loop.max_iterations if loop else 1),
    )

    env: Environment = dict(inputs)
    builder = _ChainBuilder(result, env)
    # Two passes over the loop body, like the type checker: the first pass
    # settles loop-carried metadata, the second records statements.
    builder.preflight(program)
    builder.extract(program)
    return result


class _ChainBuilder:
    """Stateful walk over a program extracting templates and chain sites."""

    def __init__(self, chains: ProgramChains, env: Environment):
        self.chains = chains
        self.env = env
        self._coord = 0
        self._stmt_index = 0

    # ------------------------------------------------------------------
    # Passes
    # ------------------------------------------------------------------
    def preflight(self, program: Program) -> None:
        """Settle loop-carried metadata without recording anything."""
        scratch = dict(self.env)
        for stmt in program.statements:
            if isinstance(stmt, Assign):
                scratch[stmt.target] = infer_expr_meta(stmt.expr, scratch)
            else:
                for loop_stmt in stmt.assignments():
                    scratch[loop_stmt.target] = infer_expr_meta(loop_stmt.expr, scratch)
        # Keep only loop-carried refinements; prologue statements will be
        # re-inferred in order during extract().
        self._settled = scratch

    def extract(self, program: Program) -> None:
        for stmt in program.statements:
            if isinstance(stmt, Assign):
                self._extract_statement(stmt, in_loop=False)
            elif isinstance(stmt, WhileLoop):
                for loop_stmt in stmt.body:
                    if isinstance(loop_stmt, Assign):
                        self._extract_statement(loop_stmt, in_loop=True)
                    else:
                        raise OptimizerError("nested loops are not supported")

    def _extract_statement(self, assign: Assign, in_loop: bool) -> None:
        # Loop-carried variables use their settled (steady-state) metadata.
        if in_loop:
            for name, meta in self._settled.items():
                self.env.setdefault(name, meta)
        env_before = dict(self.env)
        normalized = normalize(assign.expr, self.chains.symmetric, env_before)
        template = self._extract_expr(normalized, in_loop)
        self.chains.statements.append(NormalizedStatement(
            index=self._stmt_index, assign=assign, template=template,
            in_loop=in_loop, env_before=env_before))
        self.env[assign.target] = infer_expr_meta(assign.expr, env_before)
        self._stmt_index += 1

    # ------------------------------------------------------------------
    # Chain extraction
    # ------------------------------------------------------------------
    def _extract_expr(self, expr: Expr, in_loop: bool) -> Expr:
        if isinstance(expr, MatMul):
            return self._extract_chain(expr, in_loop)
        if isinstance(expr, (MatrixRef, ScalarRef, Literal, ChainPlaceholder)):
            return expr
        if isinstance(expr, Transpose):
            return Transpose(self._extract_expr(expr.child, in_loop))
        if isinstance(expr, Neg):
            return Neg(self._extract_expr(expr.child, in_loop))
        if isinstance(expr, (Add, Sub, ElemMul, ElemDiv)):
            return type(expr)(self._extract_expr(expr.left, in_loop),
                              self._extract_expr(expr.right, in_loop))
        if isinstance(expr, Compare):
            return Compare(expr.op, self._extract_expr(expr.left, in_loop),
                           self._extract_expr(expr.right, in_loop))
        if isinstance(expr, Call):
            return Call(expr.func,
                        tuple(self._extract_expr(a, in_loop) for a in expr.args))
        raise OptimizerError(f"cannot extract chains from {type(expr).__name__}")

    def _extract_chain(self, root: MatMul, in_loop: bool) -> ChainPlaceholder:
        factors: list[Expr] = []
        spans: set[tuple[int, int]] = set()

        def flatten(node: Expr) -> tuple[int, int]:
            if isinstance(node, MatMul):
                left_span = flatten(node.left)
                right_span = flatten(node.right)
                span = (left_span[0], right_span[1])
                spans.add(span)
                return span
            index = len(factors)
            factors.append(node)
            return (index, index)

        flatten(root)
        operands = [self._make_operand(factor, in_loop) for factor in factors]
        site = ChainSite(
            site_id=len(self.chains.sites),
            stmt_index=self._stmt_index,
            operands=operands,
            coords=[self._next_coord() for _ in operands],
            in_loop=in_loop,
            original_spans=frozenset(spans),
        )
        self.chains.sites.append(site)
        return ChainPlaceholder(site.site_id)

    def _make_operand(self, factor: Expr, in_loop: bool) -> Operand:
        transposed = False
        base = factor
        if isinstance(factor, Transpose):
            transposed = True
            base = factor.child
        # Opaque factors (parenthesized sums, calls) stay as-is: they act as
        # single leaves of the chain. Their symbol is structural, so two
        # occurrences of the same opaque sub-expression still hash-collide.
        symbol = self._symbol_of(base)
        symmetric = self._is_symmetric(base)
        loop_constant = in_loop and self._is_loop_constant(base)
        return Operand(base, transposed, symbol, symmetric, loop_constant)

    def _symbol_of(self, base: Expr) -> str:
        if isinstance(base, (MatrixRef, ScalarRef)):
            return base.name
        if isinstance(base, Literal):
            return f"#{base.value:g}"
        return f"({base!r})"

    def _is_symmetric(self, base: Expr) -> bool:
        if isinstance(base, MatrixRef):
            if base.name in self.chains.symmetric:
                return True
            # Only *trusted* symmetry collapses transposes; a raw declared
            # flag on a variable some assignment de-symmetrizes must not.
            meta = self.env.get(base.name)
            return meta is not None and meta.is_scalar_like
        return False

    def _is_loop_constant(self, base: Expr) -> bool:
        names = base.variables()
        if not names:
            return True  # literals
        return names <= self.chains.loop_constants

    def _next_coord(self) -> int:
        self._coord += 1
        return self._coord
