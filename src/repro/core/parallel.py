"""Deterministic fan-out for candidate pricing.

The elimination strategies price many independent candidates — span tables
per chain site, shared costs per option, whole candidate programs per
enumerated combination. :func:`parallel_map` runs such a batch over a
``concurrent.futures`` thread pool while keeping the results in input
order, so any reduction over them (min-cost plan selection, savings
ranking) is bit-identical to the serial path: parallelism only reschedules
independent work, it never reorders a floating-point reduction.

``workers <= 1`` (the default everywhere) bypasses the pool entirely — the
serial fallback is a plain comprehension with zero thread overhead, and the
acceptance baseline that existing figure scripts compare against.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count knob: None/0 -> one per CPU, else as given."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    return max(1, workers)


def parallel_map(fn: Callable[[Item], Result], items: Iterable[Item],
                 workers: int = 1) -> list[Result]:
    """Map ``fn`` over ``items``, preserving input order in the result.

    Serial when ``workers <= 1`` or the batch is trivial; otherwise fans
    out over a thread pool. Exceptions propagate either way.
    """
    batch: Sequence[Item] = items if isinstance(items, (list, tuple)) \
        else list(items)
    if workers <= 1 or len(batch) <= 1:
        return [fn(item) for item in batch]
    with ThreadPoolExecutor(max_workers=min(workers, len(batch))) as pool:
        return list(pool.map(fn, batch))
