"""Cross-block CSE/LSE detection (§3.2/§3.3 Discussion).

Distributive expansion (step ➋) can hide redundancy that spans blocks: the
paper's example ``P·XY + P·YZ + XY·Q + YZ·Q`` has the common subexpression
``XY + YZ`` across four blocks. The extension reverts the expansion by
extracting common leading/trailing factors — grouping blocks like
``P·(XY + YZ)`` and ``(XY + YZ)·Q`` — and then checks whether the grouped
parts are common (or loop-constant), reusing the fact that the within-block
search already knows ``XY`` and ``YZ`` are common.

Detection is cheap ("a negligible overhead cost"): it only combines keys
the block-wise hash table has already produced. :func:`apply_cross_block`
rewrites a program to share a detected grouped part; the main optimizer
pipeline does not apply these automatically (the paper's evaluation does
not exercise them either), but the API and tests demonstrate the full
mechanism on the paper's example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.ast import Add, Expr, Neg, Sub
from .chains import ChainPlaceholder, ProgramChains


@dataclass(frozen=True)
class GroupedBlock:
    """Blocks of one sum that share a common factor.

    ``factor_token`` is the shared leading/trailing operand; ``rest_keys``
    are the canonical keys of the remaining chains — the grouped part, e.g.
    frozenset({'X Y', 'Y Z'}) for ``P·(XY + YZ)``.
    """

    stmt_index: int
    side: str  # "prefix" or "suffix"
    factor_token: str
    rest_keys: frozenset[str]
    site_ids: tuple[int, ...]


@dataclass(frozen=True)
class CrossBlockOption:
    """A grouped part common to two or more block groups."""

    rest_keys: frozenset[str]
    groups: tuple[GroupedBlock, ...]
    loop_constant: bool

    def __repr__(self) -> str:
        keys = " + ".join(sorted(self.rest_keys))
        factors = ", ".join(f"{g.factor_token}({g.side})" for g in self.groups)
        kind = "LSE" if self.loop_constant else "CSE"
        return f"CrossBlock{kind}<{keys}> via [{factors}]"


@dataclass
class CrossBlockResult:
    groups: list[GroupedBlock] = field(default_factory=list)
    options: list[CrossBlockOption] = field(default_factory=list)


def crossblock_search(chains: ProgramChains) -> CrossBlockResult:
    """Group expanded blocks by common factors; match grouped parts."""
    result = CrossBlockResult()
    for normalized in chains.statements:
        site_ids = _sum_of_placeholders(normalized.template)
        if len(site_ids) < 2:
            continue
        result.groups.extend(_factor_groups(chains, normalized.index, site_ids))
    # The identity-matrix grouping of the paper (I·(PXY + XYQ)) corresponds
    # to the trivial "no factor" group: the sum of whole blocks.
    by_rest: dict[frozenset[str], list[GroupedBlock]] = {}
    for group in result.groups:
        if len(group.rest_keys) >= 2:
            by_rest.setdefault(group.rest_keys, []).append(group)
    for rest_keys, groups in sorted(by_rest.items(), key=lambda kv: sorted(kv[0])):
        if len(groups) >= 2:
            loop_constant = _grouped_part_loop_constant(chains, groups[0])
            result.options.append(CrossBlockOption(
                rest_keys=rest_keys, groups=tuple(groups),
                loop_constant=loop_constant))
    return result


def _sum_of_placeholders(template: Expr) -> list[int]:
    """Site ids of the top-level additive terms that are pure chains."""
    sites: list[int] = []

    def walk(node: Expr) -> None:
        if isinstance(node, (Add, Sub)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Neg):
            walk(node.child)
        elif isinstance(node, ChainPlaceholder):
            sites.append(node.site_id)

    walk(template)
    return sites


def _factor_groups(chains: ProgramChains, stmt_index: int,
                   site_ids: list[int]) -> list[GroupedBlock]:
    """Group the sum's blocks by shared first or last operand."""
    groups: list[GroupedBlock] = []
    for side in ("prefix", "suffix"):
        by_factor: dict[str, list[int]] = {}
        for site_id in site_ids:
            site = chains.site(site_id)
            if len(site) < 2:
                continue
            operand = site.operands[0] if side == "prefix" else site.operands[-1]
            by_factor.setdefault(operand.token(), []).append(site_id)
        for factor_token, members in by_factor.items():
            if len(members) < 2:
                continue
            rest_keys = frozenset(
                _rest_key(chains, site_id, side) for site_id in members)
            groups.append(GroupedBlock(
                stmt_index=stmt_index, side=side, factor_token=factor_token,
                rest_keys=rest_keys, site_ids=tuple(members)))
    return groups


def _rest_key(chains: ProgramChains, site_id: int, side: str) -> str:
    """Canonical key of a block minus its shared factor."""
    site = chains.site(site_id)
    operands = site.operands[1:] if side == "prefix" else site.operands[:-1]
    forward = " ".join(op.token() for op in operands)
    backward = " ".join(op.flipped().token() for op in reversed(operands))
    return min(forward, backward)


def _grouped_part_loop_constant(chains: ProgramChains, group: GroupedBlock) -> bool:
    """Whether every chain of the grouped part is loop-constant."""
    for site_id in group.site_ids:
        site = chains.site(site_id)
        operands = site.operands[1:] if group.side == "prefix" else site.operands[:-1]
        if not site.in_loop:
            return False
        if not all(op.loop_constant for op in operands):
            return False
    return True


# ----------------------------------------------------------------------
# Applying a cross-block option
# ----------------------------------------------------------------------
def apply_cross_block(chains: ProgramChains, option: CrossBlockOption,
                      model, input_sketches) -> "Program":
    """Rewrite the program to share a grouped part across blocks.

    For the paper's example ``P·XY + P·YZ + XY·Q + YZ·Q`` this produces::

        G = X %*% Y + Y %*% Z        (hoisted before the loop if constant)
        R = P %*% G + G %*% Q

    Only positively-signed sums of plain chain blocks are handled; groups
    whose members mix signs or orientations are rejected with
    :class:`~repro.errors.OptimizerError` (the search does not produce such
    groups for the supported workloads).
    """
    from ..errors import OptimizerError
    from ..lang.ast import Add, MatMul
    from ..lang.program import Assign, Program, WhileLoop
    from .build import (build_chain_expr, build_span_table, _operand_sketch,
                        statement_sketch_envs)
    from .chains import ChainSite

    envs = statement_sketch_envs(chains, model, input_sketches)
    member_sites = {site_id for group in option.groups
                    for site_id in group.site_ids}
    first_group = option.groups[0]

    # ---- build the grouped-sum temporary ------------------------------
    temp_name = "tGROUP0"
    rest_exprs = []
    for site_id in first_group.site_ids:
        site = chains.site(site_id)
        operands = (site.operands[1:] if first_group.side == "prefix"
                    else site.operands[:-1])
        env = envs[site.stmt_index]
        sketches = [_operand_sketch(op, env, model) for op in operands]
        if len(operands) == 1:
            rest_exprs.append(operands[0].to_expr())
            continue
        pseudo = ChainSite(site_id=-1, stmt_index=site.stmt_index,
                           operands=list(operands),
                           coords=list(range(len(operands))), in_loop=False)
        table = build_span_table(pseudo, model, sketches, 1.0)
        rest_exprs.append(build_chain_expr(list(operands), table.plain_split,
                                           0, len(operands) - 1))
    temp_expr = rest_exprs[0]
    for expr in rest_exprs[1:]:
        temp_expr = Add(temp_expr, expr)
    temp_stmt = Assign(temp_name, temp_expr)

    # ---- verify all groups share the grouped part's orientation -------
    first_rests = _ordered_rest_tokens(chains, first_group)
    for group in option.groups[1:]:
        if _ordered_rest_tokens(chains, group) != first_rests:
            raise OptimizerError(
                "cross-block groups disagree on the grouped part's "
                "orientation; cannot share one temporary")

    # ---- rebuild statements with grouped terms ------------------------
    site_term: dict[int, Expr | None] = {}
    for group in option.groups:
        site = chains.site(group.site_ids[0])
        factor = (site.operands[0] if group.side == "prefix"
                  else site.operands[-1])
        from ..lang.ast import MatrixRef
        temp_ref = MatrixRef(temp_name)
        term = (MatMul(factor.to_expr(), temp_ref)
                if group.side == "prefix" else
                MatMul(temp_ref, factor.to_expr()))
        site_term[group.site_ids[0]] = term
        for other in group.site_ids[1:]:
            site_term[other] = None  # folded into the group's single term

    def rebuild_template(template: Expr) -> Expr:
        if isinstance(template, ChainPlaceholder):
            if template.site_id in site_term:
                replacement = site_term[template.site_id]
                if replacement is None:
                    raise OptimizerError("folded term survived sum surgery")
                return replacement
            site = chains.site(template.site_id)
            return _plain_site_expr(site)
        if isinstance(template, Add):
            left_sites = _placeholder_sites(template.left)
            right_sites = _placeholder_sites(template.right)
            left_dead = left_sites and all(site_term.get(s, 1) is None
                                           for s in left_sites)
            right_dead = right_sites and all(site_term.get(s, 1) is None
                                             for s in right_sites)
            if left_dead and right_dead:
                raise OptimizerError("whole sum folded away")
            if left_dead:
                return rebuild_template(template.right)
            if right_dead:
                return rebuild_template(template.left)
            return Add(rebuild_template(template.left),
                       rebuild_template(template.right))
        children = template.children()
        if not children:
            return template
        import dataclasses
        rebuilt = {name: rebuild_template(value)
                   if isinstance(value, Expr) else value
                   for name, value in
                   ((f.name, getattr(template, f.name))
                    for f in dataclasses.fields(template))}
        return type(template)(**rebuilt)

    def _placeholder_sites(expr: Expr) -> set[int]:
        return {node.site_id for node in expr.walk()
                if isinstance(node, ChainPlaceholder)}

    def _plain_site_expr(site) -> Expr:
        env = envs[site.stmt_index]
        sketches = [_operand_sketch(op, env, model) for op in site.operands]
        if len(site.operands) == 1:
            return site.operands[0].to_expr()
        pseudo = ChainSite(site_id=-1, stmt_index=site.stmt_index,
                           operands=list(site.operands),
                           coords=list(range(len(site))), in_loop=False)
        table = build_span_table(pseudo, model, sketches, 1.0)
        return build_chain_expr(list(site.operands), table.plain_split,
                                0, len(site.operands) - 1)

    rebuilt_statements = []
    cursor = 0
    for stmt in chains.program.statements:
        if isinstance(stmt, Assign):
            normalized = chains.statements[cursor]
            rebuilt_statements.append(
                Assign(stmt.target, rebuild_template(normalized.template)))
            cursor += 1
        elif isinstance(stmt, WhileLoop):
            if option.loop_constant:
                rebuilt_statements.append(temp_stmt)
            body = []
            inserted = False
            for loop_stmt in stmt.body:
                normalized = chains.statements[cursor]
                touches = any(s.stmt_index == cursor
                              for s in (chains.site(sid)
                                        for sid in member_sites))
                if touches and not option.loop_constant and not inserted:
                    body.append(temp_stmt)
                    inserted = True
                body.append(Assign(loop_stmt.target,
                                   rebuild_template(normalized.template)))
                cursor += 1
            rebuilt_statements.append(WhileLoop(condition=stmt.condition,
                                                body=tuple(body),
                                                max_iterations=stmt.max_iterations))
    return Program(statements=rebuilt_statements,
                   inputs=list(chains.program.inputs))


def _ordered_rest_tokens(chains: ProgramChains,
                         group: GroupedBlock) -> frozenset[tuple[str, ...]]:
    """The grouped part's chains as ordered token tuples (orientation-aware)."""
    rests = set()
    for site_id in group.site_ids:
        site = chains.site(site_id)
        operands = (site.operands[1:] if group.side == "prefix"
                    else site.operands[:-1])
        rests.add(tuple(op.token() for op in operands))
    return frozenset(rests)
