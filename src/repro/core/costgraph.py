"""The cost graph (§4.3.1, Fig. 6): operators, inputs, and candidate costs.

Operators are named by their input coordinate spans — ``O({8,9},{10})`` is
the multiply whose inputs are the subexpressions at coordinates 8-9 and 10,
matching the paper's Table 1 notation. Each operator carries one *base*
cost plus any reduced *candidate* costs contributed by CSE (yellow in the
paper's figure) or LSE (blue) options that reuse its output.

The probing DP in :mod:`repro.core.probe` consumes the underlying span
tables directly for speed; this graph is the faithful, inspectable artifact
— examples and tests walk it, and `describe()` renders the same structure
the paper draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .build import OptionCosting, SpanTable
from .chains import ProgramChains

BASE = "base"
CSE_COST = "cse"
LSE_COST = "lse"


@dataclass(frozen=True)
class OperatorCost:
    """One cost alternative of an operator."""

    kind: str  # base / cse / lse
    value: float
    option_id: int | None = None

    def __repr__(self) -> str:
        tag = f" opt{self.option_id}" if self.option_id is not None else ""
        return f"{self.kind}={self.value:.4g}{tag}"


@dataclass
class OperatorNode:
    """An operator O(I_l, I_r): a multiply of two coordinate spans."""

    site_id: int
    left_span: tuple[int, int]   # inclusive operand indexes within the site
    right_span: tuple[int, int]
    coords_left: tuple[int, ...]   # global coordinates (Table 1's I_l)
    coords_right: tuple[int, ...]
    costs: list[OperatorCost] = field(default_factory=list)

    @property
    def output_span(self) -> tuple[int, int]:
        return (self.left_span[0], self.right_span[1])

    @property
    def min_cost(self) -> float:
        return min(c.value for c in self.costs)

    def __repr__(self) -> str:
        left = "{" + ",".join(map(str, self.coords_left)) + "}"
        right = "{" + ",".join(map(str, self.coords_right)) + "}"
        return f"O({left},{right})"


@dataclass
class CostGraph:
    """All candidate operators of a program, grouped by chain site."""

    nodes: dict[tuple[int, int, int], OperatorNode] = field(default_factory=dict)

    def operator(self, site_id: int, i: int, k: int, j: int) -> OperatorNode:
        return self.nodes[(site_id, _pack(i, k), _pack(k + 1, j))]

    def operators_producing(self, site_id: int,
                            span: tuple[int, int]) -> list[OperatorNode]:
        """The operators "underneath" an operator input (Definition 2)."""
        return [node for node in self.nodes.values()
                if node.site_id == site_id and node.output_span == span]

    @property
    def num_operators(self) -> int:
        return len(self.nodes)

    @property
    def num_candidate_costs(self) -> int:
        return sum(1 for node in self.nodes.values()
                   for cost in node.costs if cost.kind != BASE)

    def describe(self, limit: int = 40) -> str:
        lines = []
        for node in list(self.nodes.values())[:limit]:
            costs = ", ".join(repr(c) for c in node.costs)
            lines.append(f"{node!r}: {costs}")
        if len(self.nodes) > limit:
            lines.append(f"... ({len(self.nodes) - limit} more operators)")
        return "\n".join(lines)


def _pack(i: int, j: int) -> int:
    return i * 4096 + j


def build_cost_graph(chains: ProgramChains, tables: dict[int, SpanTable],
                     costings: list[OptionCosting]) -> CostGraph:
    """Collate span tables and option costings into a cost graph."""
    graph = CostGraph()
    for site in chains.sites:
        table = tables[site.site_id]
        n = len(site)
        for width in range(2, n + 1):
            for i in range(0, n - width + 1):
                j = i + width - 1
                for k in range(i, j):
                    node = OperatorNode(
                        site_id=site.site_id,
                        left_span=(i, k), right_span=(k + 1, j),
                        coords_left=tuple(site.coords[i:k + 1]),
                        coords_right=tuple(site.coords[k + 1:j + 1]),
                        costs=[OperatorCost(BASE, table.op_cost[(i, k, j)])])
                    graph.nodes[(site.site_id, _pack(i, k), _pack(k + 1, j))] = node
    # Attach candidate costs to every operator producing an occurrence span.
    for costing in costings:
        option = costing.option
        kind = LSE_COST if option.is_lse else CSE_COST
        for occ in option.occurrences:
            site = chains.site(occ.site_id)
            for node in graph.operators_producing(occ.site_id, occ.span):
                node.costs.append(OperatorCost(kind, costing.apportioned,
                                               option.option_id))
            del site
    return graph
