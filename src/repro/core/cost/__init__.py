"""Cost model: operator pricing over sketches and program-level evaluation."""

from .evaluate import ProgramCost, ProgramCostEvaluator, sketch_inputs
from .model import CostModel, Priced

__all__ = ["CostModel", "Priced", "ProgramCost", "ProgramCostEvaluator",
           "sketch_inputs"]
