"""The cost model (§4.2): price operators from estimated metadata.

Wraps the shared pricing formulas of :mod:`repro.runtime.pricing` with a
sparsity estimator: every operator's output sketch is propagated and its
price computed from the *estimated* metas. ``c_O = compute_O + transmit_O``
(Eq. 3) with compute from FLOP counts (Eq. 4) and transmission from the
primitive volumes (Eqs. 5-6) — identical formulas to the runtime's clock,
so estimator error is the model's only error source.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...config import ClusterConfig
from ...matrix.meta import MatrixMeta
from ...runtime.hybrid import ExecutionPolicy
from ...runtime.pricing import (
    OpPrice,
    price_aggregate,
    price_ewise,
    price_matmul,
    price_mmchain,
    price_persist,
    price_transpose,
)
from ..sparsity.base import Sketch, SparsityEstimator


@dataclass
class Priced:
    """An operator's price together with its output sketch."""

    price: OpPrice
    sketch: Sketch

    @property
    def seconds(self) -> float:
        return self.price.seconds


class CostModel:
    """Prices logical operators over estimator sketches."""

    def __init__(self, config: ClusterConfig, estimator: SparsityEstimator,
                 policy: ExecutionPolicy | None = None):
        self.config = config
        self.estimator = estimator
        self.policy = policy or ExecutionPolicy.systemds()

    # ------------------------------------------------------------------
    # Sketch plumbing
    # ------------------------------------------------------------------
    def meta(self, sketch: Sketch) -> MatrixMeta:
        return self.estimator.meta(sketch)

    def sketch_of(self, data=None, meta: MatrixMeta | None = None,
                  symmetric: bool = False) -> Sketch:
        """Sketch an input from data when available, else from metadata."""
        if data is not None and not isinstance(data, (int, float)):
            return self.estimator.sketch_data(data, symmetric=symmetric)
        if isinstance(data, (int, float)):
            return self.estimator.scalar()
        if meta is None:
            raise ValueError("either data or meta must be provided")
        return self.estimator.sketch_meta(meta)

    @property
    def stats_collection_seconds(self) -> float:
        """Simulated time spent collecting estimator statistics.

        Charged to compilation time — this is MNC's extra cost in
        Fig. 10(a) relative to the metadata estimator.
        """
        return self.estimator.stats_collection_flops / self.config.cluster_flops

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def matmul(self, left: Sketch, right: Sketch,
               left_fused_transpose: bool = False,
               right_fused_transpose: bool = False) -> Priced:
        eff_left = self.estimator.transpose(left) if left_fused_transpose else left
        eff_right = self.estimator.transpose(right) if right_fused_transpose else right
        out = self.estimator.matmul(eff_left, eff_right)
        price = price_matmul(self.meta(eff_left), self.meta(eff_right), self.meta(out),
                             self.config, self.policy,
                             left_fused_transpose=left_fused_transpose,
                             right_fused_transpose=right_fused_transpose)
        return Priced(price, out)

    def mmchain(self, x: Sketch, v: Sketch) -> Priced:
        """Price the fused t(X) %*% (X %*% v) chain."""
        inner = self.estimator.matmul(x, v)
        out = self.estimator.matmul(self.estimator.transpose(x), inner)
        price = price_mmchain(self.meta(x), self.meta(v), self.meta(out),
                              self.config, self.policy)
        return Priced(price, out)

    def ewise(self, kind: str, left: Sketch, right: Sketch) -> Priced:
        combine = {
            "add": self.estimator.add,
            "subtract": self.estimator.subtract,
            "multiply": self.estimator.multiply,
            "divide": self.estimator.divide,
        }[kind]
        out = combine(left, right)
        price = price_ewise(kind, self.meta(left), self.meta(right), self.meta(out),
                            self.config, self.policy)
        return Priced(price, out)

    def transpose(self, operand: Sketch) -> Priced:
        out = self.estimator.transpose(operand)
        price = price_transpose(self.meta(operand), self.config, self.policy)
        return Priced(price, out)

    def aggregate(self, operand: Sketch, flop_multiplier: float = 1.0) -> Priced:
        price = price_aggregate(self.meta(operand), self.config, self.policy,
                                flop_multiplier=flop_multiplier)
        return Priced(price, self.estimator.scalar())

    def map_cells(self, func_name: str, operand: Sketch) -> Priced:
        """Price a cell-wise builtin map."""
        from ...lang.ast import ZERO_PRESERVING_BUILTINS
        from ...runtime.pricing import price_map
        preserves = func_name in ZERO_PRESERVING_BUILTINS
        out = self.estimator.scalar_op(operand, preserves_zero=preserves)
        price = price_map(self.meta(operand), self.meta(out), self.config,
                          self.policy)
        return Priced(price, out)

    def structural(self, kind: str, operand: Sketch) -> Priced:
        """Price rowsums / colsums / diag."""
        from ...lang.typecheck import _call_meta  # shape rules live there
        from ...lang.ast import Call, MatrixRef
        from ...runtime.pricing import price_structural
        meta_in = self.meta(operand)
        out_meta = _call_meta(Call(kind, (MatrixRef("__x__"),)),
                              {"__x__": meta_in})
        out = self.estimator.sketch_meta(out_meta)
        price = price_structural(kind, meta_in, out_meta, self.config, self.policy)
        return Priced(price, out)

    def persist(self, operand: Sketch) -> OpPrice:
        return price_persist(self.meta(operand), self.config, self.policy)

    def scalar(self) -> Sketch:
        return self.estimator.scalar()
