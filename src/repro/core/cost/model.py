"""The cost model (§4.2): price operators from estimated metadata.

Wraps the shared pricing formulas of :mod:`repro.runtime.pricing` with a
sparsity estimator: every operator's output sketch is propagated and its
price computed from the *estimated* metas. ``c_O = compute_O + transmit_O``
(Eq. 3) with compute from FLOP counts (Eq. 4) and transmission from the
primitive volumes (Eqs. 5-6) — identical formulas to the runtime's clock,
so estimator error is the model's only error source.

Within one compilation the same (operator, operand sketches) pair is priced
hundreds of times — once per candidate program, per adaptive round, per
span table. The model therefore memoizes prices by operand identity (valid
because :class:`~repro.core.sparsity.memo.MemoizedEstimator` makes repeated
propagations return shared sketch objects); disable with ``memoize=False``
to reproduce the unmemoized baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...config import ClusterConfig
from ...matrix.meta import MatrixMeta
from ...runtime.hybrid import ExecutionPolicy
from ...runtime.pricing import (
    OpPrice,
    price_aggregate,
    price_ewise,
    price_matmul,
    price_mmchain,
    price_persist,
    price_transpose,
)
from ..sparsity.base import Sketch, SparsityEstimator
from ..sparsity.memo import MemoizedEstimator


@dataclass
class Priced:
    """An operator's price together with its output sketch."""

    price: OpPrice
    sketch: Sketch

    @property
    def seconds(self) -> float:
        return self.price.seconds


class CostModel:
    """Prices logical operators over estimator sketches."""

    def __init__(self, config: ClusterConfig, estimator: SparsityEstimator,
                 policy: ExecutionPolicy | None = None,
                 memoize: bool = True):
        self.config = config
        if memoize and not isinstance(estimator, MemoizedEstimator):
            estimator = MemoizedEstimator(estimator)
        self.estimator = estimator
        self.policy = policy or ExecutionPolicy.systemds()
        #: price-memo table: op key (kind + operand sketch ids + flags) ->
        #: (operand refs..., result). Refs pin the keyed ids.
        self._prices: dict[tuple, tuple] | None = {} if memoize else None
        self.price_hits = 0
        self.price_misses = 0

    def _memo(self, key: tuple, operands: tuple, compute):
        """Memoized operator pricing (identity-keyed, see module docstring)."""
        if self._prices is None:
            return compute()
        entry = self._prices.get(key)
        if entry is not None:
            self.price_hits += 1
            return entry[-1]
        self.price_misses += 1
        result = compute()
        self._prices[key] = (*operands, result)
        return result

    @property
    def memo_stats(self) -> dict[str, int]:
        """Hit/miss counters of the price and sketch memo layers."""
        stats = {"price_hits": self.price_hits,
                 "price_misses": self.price_misses}
        if isinstance(self.estimator, MemoizedEstimator):
            sketch = self.estimator.stats
            stats["sketch_hits"] = sketch["hits"]
            stats["sketch_misses"] = sketch["misses"]
        return stats

    # ------------------------------------------------------------------
    # Sketch plumbing
    # ------------------------------------------------------------------
    def meta(self, sketch: Sketch) -> MatrixMeta:
        return self.estimator.meta(sketch)

    def sketch_of(self, data=None, meta: MatrixMeta | None = None,
                  symmetric: bool = False) -> Sketch:
        """Sketch an input from data when available, else from metadata."""
        if data is not None and not isinstance(data, (int, float)):
            return self.estimator.sketch_data(data, symmetric=symmetric)
        if isinstance(data, (int, float)):
            return self.estimator.scalar()
        if meta is None:
            raise ValueError("either data or meta must be provided")
        return self.estimator.sketch_meta(meta)

    @property
    def stats_collection_seconds(self) -> float:
        """Simulated time spent collecting estimator statistics.

        Charged to compilation time — this is MNC's extra cost in
        Fig. 10(a) relative to the metadata estimator.
        """
        return self.estimator.stats_collection_flops / self.config.cluster_flops

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def matmul(self, left: Sketch, right: Sketch,
               left_fused_transpose: bool = False,
               right_fused_transpose: bool = False) -> Priced:
        def compute() -> Priced:
            eff_left = self.estimator.transpose(left) if left_fused_transpose else left
            eff_right = self.estimator.transpose(right) if right_fused_transpose else right
            out = self.estimator.matmul(eff_left, eff_right)
            price = price_matmul(self.meta(eff_left), self.meta(eff_right), self.meta(out),
                                 self.config, self.policy,
                                 left_fused_transpose=left_fused_transpose,
                                 right_fused_transpose=right_fused_transpose)
            return Priced(price, out)
        key = ("matmul", id(left), id(right),
               left_fused_transpose, right_fused_transpose)
        return self._memo(key, (left, right), compute)

    def mmchain(self, x: Sketch, v: Sketch, exact_inner: bool = False) -> Priced:
        """Price the fused t(X) %*% (X %*% v) chain.

        ``exact_inner=True`` (the cost-gated fusion path) prices the
        never-materialized intermediate with its estimated meta instead of
        the legacy dense assumption, matching the runtime's observed-meta
        charge on that path.
        """
        def compute() -> Priced:
            inner = self.estimator.matmul(x, v)
            out = self.estimator.matmul(self.estimator.transpose(x), inner)
            price = price_mmchain(self.meta(x), self.meta(v), self.meta(out),
                                  self.config, self.policy,
                                  inner=self.meta(inner) if exact_inner else None)
            return Priced(price, out)
        return self._memo(("mmchain", id(x), id(v), exact_inner), (x, v),
                          compute)

    def ewise(self, kind: str, left: Sketch, right: Sketch) -> Priced:
        def compute() -> Priced:
            combine = {
                "add": self.estimator.add,
                "subtract": self.estimator.subtract,
                "multiply": self.estimator.multiply,
                "divide": self.estimator.divide,
            }[kind]
            out = combine(left, right)
            price = price_ewise(kind, self.meta(left), self.meta(right), self.meta(out),
                                self.config, self.policy)
            return Priced(price, out)
        return self._memo(("ewise", kind, id(left), id(right)), (left, right),
                          compute)

    def transpose(self, operand: Sketch) -> Priced:
        def compute() -> Priced:
            out = self.estimator.transpose(operand)
            price = price_transpose(self.meta(operand), self.config, self.policy)
            return Priced(price, out)
        return self._memo(("transpose", id(operand)), (operand,), compute)

    def aggregate(self, operand: Sketch, flop_multiplier: float = 1.0) -> Priced:
        def compute() -> Priced:
            price = price_aggregate(self.meta(operand), self.config, self.policy,
                                    flop_multiplier=flop_multiplier)
            return Priced(price, self.estimator.scalar())
        return self._memo(("aggregate", id(operand), flop_multiplier),
                          (operand,), compute)

    def map_cells(self, func_name: str, operand: Sketch) -> Priced:
        """Price a cell-wise builtin map."""
        def compute() -> Priced:
            from ...lang.ast import ZERO_PRESERVING_BUILTINS
            from ...runtime.pricing import price_map
            preserves = func_name in ZERO_PRESERVING_BUILTINS
            out = self.estimator.scalar_op(operand, preserves_zero=preserves)
            price = price_map(self.meta(operand), self.meta(out), self.config,
                              self.policy)
            return Priced(price, out)
        return self._memo(("map_cells", func_name, id(operand)), (operand,),
                          compute)

    def structural(self, kind: str, operand: Sketch) -> Priced:
        """Price rowsums / colsums / diag."""
        def compute() -> Priced:
            from ...lang.typecheck import _call_meta  # shape rules live there
            from ...lang.ast import Call, MatrixRef
            from ...runtime.pricing import price_structural
            meta_in = self.meta(operand)
            out_meta = _call_meta(Call(kind, (MatrixRef("__x__"),)),
                                  {"__x__": meta_in})
            out = self.estimator.sketch_meta(out_meta)
            price = price_structural(kind, meta_in, out_meta, self.config, self.policy)
            return Priced(price, out)
        return self._memo(("structural", kind, id(operand)), (operand,),
                          compute)

    def persist(self, operand: Sketch) -> OpPrice:
        def compute() -> OpPrice:
            return price_persist(self.meta(operand), self.config, self.policy)
        return self._memo(("persist", id(operand)), (operand,), compute)

    def scalar(self) -> Sketch:
        return self.estimator.scalar()
