"""Program-level cost evaluation: a "sketch executor".

Walks a program exactly the way the runtime executor does — same fused-
transpose handling, same operator dispatch — but over estimator sketches,
summing operator prices instead of computing values. Loop bodies are
evaluated to a sparsity steady state (two passes) and the second pass's
per-iteration cost is multiplied by the loop's iteration budget.

This is the arbiter every elimination strategy uses: the brute-force
enumerator prices each rewritten candidate program with it, and the DP's
chosen plan gets its final predicted cost from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import OptimizerError
from ...lang.ast import (
    Add,
    Call,
    Compare,
    ElemDiv,
    ElemMul,
    Expr,
    Literal,
    MatMul,
    MatrixRef,
    Neg,
    ScalarRef,
    Sub,
    Transpose,
)
from ...lang.program import Assign, Program, Statement, WhileLoop
from ...matrix import ops as flops
from ...matrix.meta import MatrixMeta
from ...runtime.fusion import Region, find_ewise_region, mmchain_beats_unfused
from ...runtime.hybrid import LOCAL, value_distributed
from ...runtime.plan import PredictedOp, StatementPath
from ...runtime.pricing import price_fused_ewise
from ..sparsity.base import Sketch
from .model import CostModel, Priced


@dataclass
class ProgramCost:
    """Predicted cost of one full program run."""

    prologue_seconds: float = 0.0
    per_iteration_seconds: float = 0.0
    iterations: int = 1
    #: Names of statements hoisted before the loop (for diagnostics).
    hoisted: list[str] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.prologue_seconds + self.iterations * self.per_iteration_seconds


class ProgramCostEvaluator:
    """Estimates the cost of executing a program on the simulated cluster."""

    def __init__(self, model: CostModel):
        self.model = model
        #: Recording sink: when set (final plan evaluation only), every
        #: priced operator appends a PredictedOp under the current
        #: statement path — the execution tracer's prediction source.
        self._record: dict[StatementPath, list[PredictedOp]] | None = None
        self._path: StatementPath | None = None

    def evaluate(self, program: Program, input_sketches: dict[str, Sketch],
                 iterations: int | None = None,
                 record: dict[StatementPath, list[PredictedOp]] | None = None,
                 ) -> ProgramCost:
        """Price one program run; optionally record per-operator predictions.

        ``record``, when given, is filled with statement-path -> ordered
        predicted operator prices. Recording is pure observation: the
        returned cost is bit-identical with or without it.
        """
        self._record = record
        self._path = None
        env: dict[str, Sketch] = dict(input_sketches)
        env["__always__"] = self.model.scalar()
        cost = ProgramCost()
        try:
            for index, stmt in enumerate(program.statements):
                if isinstance(stmt, Assign):
                    self._path = (index,)
                    seconds, sketch = self._price_assign(stmt, env)
                    self._path = None
                    cost.prologue_seconds += seconds
                    cost.hoisted.append(stmt.target)
                    env[stmt.target] = sketch
                elif isinstance(stmt, WhileLoop):
                    loop_iters = iterations if iterations is not None else stmt.max_iterations
                    cost.iterations = loop_iters
                    cost.per_iteration_seconds += self._price_loop(stmt, env, (index,))
                else:  # pragma: no cover - defensive
                    raise OptimizerError(f"unknown statement type {type(stmt).__name__}")
        finally:
            self._record = None
            self._path = None
        return cost

    def _price_loop(self, loop: WhileLoop, env: dict[str, Sketch],
                    path: StatementPath) -> float:
        # Same in-order DFS as WhileLoop.assignments(), with statement paths.
        pairs = list(_assignments_with_paths(loop.body, path))
        # First pass settles loop-carried sketches; second pass is priced
        # (and recorded: the steady-state prices are the plan's prediction).
        for _stmt_path, stmt in pairs:
            _seconds, sketch = self._price_assign(stmt, env)
            env[stmt.target] = sketch
        total = 0.0
        for stmt_path, stmt in pairs:
            self._path = stmt_path
            seconds, sketch = self._price_assign(stmt, env)
            self._path = None
            env[stmt.target] = sketch
            total += seconds
        return total

    def _price_assign(self, stmt: Assign, env: dict[str, Sketch]) -> tuple[float, Sketch]:
        seconds, sketch = self._price_expr(stmt.expr, env)
        return seconds, sketch

    def _note(self, kind: str, priced) -> None:
        """Record one priced operator under the current statement path."""
        if self._record is None or self._path is None:
            return
        meta = self.model.meta(priced.sketch)
        price = priced.price
        self._record.setdefault(self._path, []).append(PredictedOp(
            kind=kind, impl=price.impl, seconds=price.seconds,
            compute_seconds=price.compute_seconds,
            transmission_seconds=price.transmission_seconds,
            out_rows=meta.rows, out_cols=meta.cols, out_nnz=meta.nnz))

    # ------------------------------------------------------------------
    # Expression pricing (mirrors Executor.evaluate)
    # ------------------------------------------------------------------
    def _price_expr(self, expr: Expr, env: dict[str, Sketch]) -> tuple[float, Sketch]:
        if isinstance(expr, (MatrixRef, ScalarRef)):
            try:
                return 0.0, env[expr.name]
            except KeyError:
                raise OptimizerError(f"undefined variable {expr.name!r} "
                                     "during cost evaluation") from None
        if isinstance(expr, Literal):
            return 0.0, self.model.scalar()
        if isinstance(expr, MatMul):
            return self._price_matmul(expr, env)
        if isinstance(expr, Transpose):
            seconds, sketch = self._price_expr(expr.child, env)
            if self.model.meta(sketch).is_scalar_like:
                return seconds, sketch
            priced = self.model.transpose(sketch)
            self._note("transpose", priced)
            return seconds + priced.seconds, priced.sketch
        if isinstance(expr, (Add, Sub, ElemMul, ElemDiv)):
            if self.model.policy.fuse:
                fused = self._try_price_fused_ewise(expr, env)
                if fused is not None:
                    return fused
            kind = {Add: "add", Sub: "subtract", ElemMul: "multiply",
                    ElemDiv: "divide"}[type(expr)]
            sec_l, left = self._price_expr(expr.left, env)
            sec_r, right = self._price_expr(expr.right, env)
            priced = self.model.ewise(kind, left, right)
            self._note(kind, priced)
            return sec_l + sec_r + priced.seconds, priced.sketch
        if isinstance(expr, Neg):
            seconds, sketch = self._price_expr(expr.child, env)
            return seconds, sketch
        if isinstance(expr, Compare):
            sec_l, _ = self._price_expr(expr.left, env)
            sec_r, _ = self._price_expr(expr.right, env)
            return sec_l + sec_r, self.model.scalar()
        if isinstance(expr, Call):
            return self._price_call(expr, env)
        raise OptimizerError(f"cannot price expression node {type(expr).__name__}")

    def _price_matmul(self, expr: MatMul, env: dict[str, Sketch]) -> tuple[float, Sketch]:
        fused = self._try_price_mmchain(expr, env)
        if fused is not None:
            return fused
        left_expr, left_fused = _unwrap_transpose(expr.left)
        right_expr, right_fused = _unwrap_transpose(expr.right)
        sec_l, left = self._price_expr(left_expr, env)
        sec_r, right = self._price_expr(right_expr, env)
        left_meta = self.model.meta(left)
        right_meta = self.model.meta(right)
        if left_meta.is_scalar_like and right_meta.is_scalar_like:
            return sec_l + sec_r, self.model.scalar()
        priced = self.model.matmul(left, right, left_fused_transpose=left_fused,
                                   right_fused_transpose=right_fused)
        self._note("matmul", priced)
        return sec_l + sec_r + priced.seconds, priced.sketch

    def _try_price_fused_ewise(self, expr: Expr, env: dict[str, Sketch]
                               ) -> tuple[float, Sketch] | None:
        """Mirror the executor's cost-gated element-wise region fusion."""
        region = find_ewise_region(expr)
        if region is None:
            return None
        leaf_sketches: list[Sketch] = []
        for leaf in region.leaves:
            if isinstance(leaf, Literal):
                leaf_sketches.append(self.model.scalar())
            else:
                sketch = env.get(leaf.name)
                if sketch is None:
                    return None  # normal path raises the canonical error
                leaf_sketches.append(sketch)
        estimate = price_fused_region(self.model, region, leaf_sketches)
        if estimate is None or not estimate.fuses:
            return None
        self._note("fused_ewise", estimate.fused)
        return estimate.fused.seconds, estimate.fused.sketch

    def _try_price_mmchain(self, expr: MatMul,
                           env: dict[str, Sketch]) -> tuple[float, Sketch] | None:
        """Mirror the executor's mmchain fusion (legacy and cost-gated)."""
        if not isinstance(expr.left, Transpose):
            return None
        if not isinstance(expr.right, MatMul):
            return None
        if expr.left.child != expr.right.left:
            return None
        sec_x, x = self._price_expr(expr.left.child, env)
        x_meta = self.model.meta(x)
        if self.model.policy.mmchain_applicable_cols(x_meta.cols):
            sec_v, v = self._price_expr(expr.right.right, env)
            if self.model.meta(v).is_scalar_like or x_meta.is_scalar_like:
                return None
            priced = self.model.mmchain(x, v)
            self._note("mmchain", priced)
            return sec_x + sec_v + priced.seconds, priced.sketch
        if not self.model.policy.fuse:
            return None
        if not isinstance(expr.left.child, (MatrixRef, ScalarRef)):
            return None
        if not isinstance(expr.right.right, (MatrixRef, ScalarRef, Literal)):
            return None
        sec_v, v = self._price_expr(expr.right.right, env)
        v_meta = self.model.meta(v)
        if v_meta.is_scalar_like or x_meta.is_scalar_like:
            return None
        if not mmchain_beats_unfused(x_meta, v_meta, 1.0, 1.0,
                                     self.model.config, self.model.policy):
            return None
        priced = self.model.mmchain(x, v, exact_inner=True)
        self._note("mmchain", priced)
        return sec_x + sec_v + priced.seconds, priced.sketch

    def _price_call(self, expr: Call, env: dict[str, Sketch]) -> tuple[float, Sketch]:
        seconds, sketch = self._price_expr(expr.args[0], env)
        if expr.func in ("sum", "trace"):
            priced = self.model.aggregate(sketch)
            self._note("aggregate", priced)
            return seconds + priced.seconds, priced.sketch
        if expr.func == "norm":
            priced = self.model.aggregate(sketch, flop_multiplier=2.0)
            self._note("aggregate", priced)
            return seconds + priced.seconds, priced.sketch
        if expr.func in ("rowsums", "colsums", "diag"):
            priced = self.model.structural(expr.func, sketch)
            self._note("structural", priced)
            return seconds + priced.seconds, priced.sketch
        from ...lang.ast import CELLWISE_BUILTINS
        if expr.func in CELLWISE_BUILTINS and \
                not self.model.meta(sketch).is_scalar_like:
            priced = self.model.map_cells(expr.func, sketch)
            self._note("map", priced)
            return seconds + priced.seconds, priced.sketch
        # nrow/ncol and scalar math: metadata-only, free.
        return seconds, self.model.scalar()


@dataclass
class FusedRegionEstimate:
    """The cost model's verdict on one fusable element-wise region."""

    fused: Priced
    unfused_seconds: float
    member_count: int

    @property
    def fuses(self) -> bool:
        """Strictly cheaper fused than unfused — same rule as the runtime."""
        return self.fused.seconds < self.unfused_seconds


def price_fused_region(model: CostModel, region: Region,
                       leaf_sketches: list[Sketch]) -> FusedRegionEstimate | None:
    """Price a fusable region both ways from estimator sketches.

    Mirrors :func:`repro.runtime.fusion.plan_fused_ewise` on the model
    side: member sketches propagate through the memoized estimator exactly
    as the unfused operators would (fusion changes pricing, never
    sketches), the unfused cost is the summed member prices, and the fused
    cost is one :func:`~repro.runtime.pricing.price_fused_ewise` over the
    summed member FLOPs. Regions with no distributed member return None —
    local regions never fuse. Shared by the program cost evaluator and the
    optimizer's fusion-region enumerator.
    """
    scalar_meta = MatrixMeta(1, 1)
    # Per region node: (is_scalar, sketch).
    results: list[tuple[bool, Sketch]] = []
    unfused_seconds = 0.0
    fused_flops = 0.0
    member_count = 0
    matrix_leaves: list[Sketch] = []
    seen: set[int] = set()
    any_distributed = False
    for node in region.nodes:
        if node.op == "leaf":
            sketch = leaf_sketches[node.a]
            is_scalar = model.meta(sketch).is_scalar_like
            if not is_scalar and id(sketch) not in seen:
                seen.add(id(sketch))
                matrix_leaves.append(sketch)
            results.append((is_scalar, sketch))
            continue
        if node.op == "neg":
            is_scalar, sketch = results[node.a]
            if is_scalar:
                return None  # scalar subtree: seed path arithmetic
            # The unfused model prices negation as free; the fused pass
            # still touches the support once, like the negate kernel.
            fused_flops += flops.ewise_mul_flops(model.meta(sketch), scalar_meta)
            member_count += 1
            results.append((False, sketch))
            continue
        left_scalar, left = results[node.a]
        right_scalar, right = results[node.b]
        if left_scalar and right_scalar:
            return None  # scalar-scalar member: seed path
        priced = model.ewise(node.op, left, right)
        unfused_seconds += priced.seconds
        fused_flops += flops.ewise_flops(node.op, model.meta(left),
                                         model.meta(right))
        member_count += 1
        if priced.price.impl != LOCAL:
            any_distributed = True
        results.append((False, priced.sketch))
    if not any_distributed or not matrix_leaves:
        return None
    broadcast_metas = [model.meta(sketch) for sketch in matrix_leaves
                       if not value_distributed(model.meta(sketch),
                                                model.config, model.policy)]
    root_sketch = results[-1][1]
    price = price_fused_ewise(fused_flops, broadcast_metas,
                              model.meta(root_sketch), True,
                              model.config, model.policy)
    return FusedRegionEstimate(Priced(price, root_sketch), unfused_seconds,
                               member_count)


def _unwrap_transpose(expr: Expr) -> tuple[Expr, bool]:
    if isinstance(expr, Transpose):
        return expr.child, True
    return expr, False


def _assignments_with_paths(body, path: StatementPath):
    """Yield (statement path, Assign) in WhileLoop.assignments() order."""
    for index, stmt in enumerate(body):
        stmt_path = path + (index,)
        if isinstance(stmt, Assign):
            yield stmt_path, stmt
        else:
            yield from _assignments_with_paths(stmt.body, stmt_path)


def sketch_inputs(model: CostModel, input_meta: dict, input_data: dict | None = None) -> dict[str, Sketch]:
    """Sketch every program input, preferring actual data when provided."""
    sketches: dict[str, Sketch] = {}
    data = input_data or {}
    for name, meta in input_meta.items():
        symmetric = getattr(meta, "symmetric", False)
        sketches[name] = model.sketch_of(data.get(name), meta, symmetric=symmetric)
    return sketches
