"""Block-wise sliding-window search for CSE and LSE (§3.2 step ➌, Fig. 5).

Every chain block is scanned with sliding windows of every width; each
window's subexpression is recorded in a hash table under a *canonical key*:
the lexicographic minimum of the window's token string and its transposed
(reversed, orientation-flipped) token string, with symmetric factors
normalized. Conflicts in the table are the redundancy: keys hit from two
or more disjoint locations yield CSE options, and keys whose factors are
all loop-constant yield LSE options (§3.3 step ➌*).

Because windows ignore the internal association order of the chain (the
associative law lets any contiguous run be computed as a unit), the search
space is quadratic per block instead of Catalan-exponential per tree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .chains import Operand, ProgramChains
from .options import CSE, LSE, EliminationOption, Occurrence, span_in_original_order


@dataclass
class _WindowHit:
    occurrence: Occurrence
    canonical: tuple[Operand, ...]
    palindromic: bool
    in_loop: bool
    stmt_index: int


@dataclass
class SearchResult:
    """Options found plus search statistics for the compilation benchmarks."""

    options: list[EliminationOption] = field(default_factory=list)
    windows_visited: int = 0
    hash_entries: int = 0
    wall_seconds: float = 0.0

    @property
    def cse_options(self) -> list[EliminationOption]:
        return [o for o in self.options if o.is_cse]

    @property
    def lse_options(self) -> list[EliminationOption]:
        return [o for o in self.options if o.is_lse]


def blockwise_search(chains: ProgramChains, min_width: int = 2,
                     cross_statement: bool = True) -> SearchResult:
    """Find all within-block CSE and LSE options of ``chains``.

    ``cross_statement=False`` is the DESIGN.md ablation of global
    coordinates: CSE occurrences are then confined to a single statement,
    as if each statement had its own coordinate axis — losing e.g. the
    DFP numerator/denominator reuse.
    """
    started = time.perf_counter()
    table: dict[str, list[_WindowHit]] = {}
    windows = 0
    for site in chains.sites:
        n = len(site)
        for width in range(min_width, n + 1):
            for start in range(0, n - width + 1):
                end = start + width - 1
                hit = _canonical_window(chains, site.site_id, start, end)
                table.setdefault(hit[0], []).append(hit[1])
                windows += 1

    options: list[EliminationOption] = []
    next_id = 0
    for key, hits in sorted(table.items()):
        for option in _options_for_key(chains, key, hits, next_id,
                                       cross_statement=cross_statement):
            options.append(option)
            next_id = option.option_id + 1
    result = SearchResult(options=options, windows_visited=windows,
                          hash_entries=len(table))
    result.wall_seconds = time.perf_counter() - started
    return result


def explicit_cse_options(chains: ProgramChains) -> list[EliminationOption]:
    """CSE that SystemDS-style explicit matching finds: identical subtrees.

    Restricts the block-wise table to windows that exist as subtrees of the
    original association order in their original orientation — exactly the
    redundancy visible without searching equivalent plans.
    """
    full = blockwise_search(chains)
    explicit: list[EliminationOption] = []
    next_id = 0
    for option in full.cse_options:
        original = [occ for occ in option.occurrences
                    if span_in_original_order(chains.site(occ.site_id),
                                              occ.start, occ.end)]
        # Identical subtrees share one orientation; a subtree and its
        # transpose are *not* textually identical, so group by orientation.
        for orientation in (False, True):
            kept = tuple(occ for occ in original
                         if occ.reversed_orientation == orientation)
            if len(kept) >= 2:
                explicit.append(EliminationOption(
                    option_id=next_id, kind=CSE, key=option.key, occurrences=kept,
                    operands=option.operands, loop_constant=option.loop_constant,
                    preserves_order=True, palindromic=option.palindromic))
                next_id += 1
            if option.palindromic:
                break  # both orientations are the same subtree
    return explicit


# ----------------------------------------------------------------------
# Window canonicalization
# ----------------------------------------------------------------------
def _canonical_window(chains: ProgramChains, site_id: int, start: int,
                      end: int) -> tuple[str, _WindowHit]:
    site = chains.site(site_id)
    ops = site.operands[start:end + 1]
    forward = " ".join(op.token() for op in ops)
    reversed_ops = tuple(op.flipped() for op in reversed(ops))
    backward = " ".join(op.token() for op in reversed_ops)
    palindromic = forward == backward
    if backward < forward:
        key = backward
        canonical = reversed_ops
        reversed_orientation = True
    else:
        key = forward
        canonical = tuple(ops)
        reversed_orientation = False
    occurrence = Occurrence(site_id, start, end,
                            reversed_orientation and not palindromic)
    return key, _WindowHit(occurrence, canonical, palindromic,
                           site.in_loop, site.stmt_index)


# ----------------------------------------------------------------------
# Option construction
# ----------------------------------------------------------------------
def _options_for_key(chains: ProgramChains, key: str, hits: list[_WindowHit],
                     next_id: int,
                     cross_statement: bool = True) -> list[EliminationOption]:
    options: list[EliminationOption] = []
    canonical = hits[0].canonical
    palindromic = hits[0].palindromic
    variables: set[str] = set()
    for op in canonical:
        variables.update(op.base.variables())
    loop_constant = variables <= chains.loop_constants

    # --- LSE: loop-constant key with at least one in-loop occurrence -----
    if loop_constant:
        in_loop_hits = [h for h in hits if h.in_loop]
        occs = _disjoint([h.occurrence for h in in_loop_hits])
        if occs:
            options.append(EliminationOption(
                option_id=next_id + len(options), kind=LSE, key=key,
                occurrences=tuple(occs), operands=canonical,
                loop_constant=True,
                preserves_order=_preserves_order(chains, occs),
                palindromic=palindromic))

    # --- CSE: two or more same-value, same-region occurrences ------------
    for region_hits in (_hits_in_region(hits, in_loop=True),
                        _hits_in_region(hits, in_loop=False)):
        if not cross_statement:
            buckets: dict[int, list[_WindowHit]] = {}
            for hit in region_hits:
                buckets.setdefault(hit.stmt_index, []).append(hit)
            region_groups = [g for bucket in buckets.values()
                             for g in _same_value_groups(chains, variables, bucket)]
        else:
            region_groups = _same_value_groups(chains, variables, region_hits)
        for group in region_groups:
            occs = _disjoint([h.occurrence for h in group])
            if len(occs) >= 2:
                options.append(EliminationOption(
                    option_id=next_id + len(options), kind=CSE, key=key,
                    occurrences=tuple(occs), operands=canonical,
                    loop_constant=loop_constant,
                    preserves_order=_preserves_order(chains, occs),
                    palindromic=palindromic))
    return options


def _hits_in_region(hits: list[_WindowHit], in_loop: bool) -> list[_WindowHit]:
    return [h for h in hits if h.in_loop == in_loop]


def _same_value_groups(chains: ProgramChains, variables: set[str],
                       hits: list[_WindowHit]) -> list[list[_WindowHit]]:
    """Split occurrences so each group observes identical operand values.

    Occurrences in later statements only join a group if none of the key's
    variables were reassigned since the group's first statement. A
    reassignment starts a fresh group (the value changed).
    """
    ordered = sorted(hits, key=lambda h: (h.stmt_index, h.occurrence.site_id,
                                          h.occurrence.start))
    groups: list[list[_WindowHit]] = []
    current: list[_WindowHit] = []
    for hit in ordered:
        if not current:
            current = [hit]
            continue
        first_stmt = current[0].stmt_index
        reassigned = chains.variables_reassigned_between(first_stmt, hit.stmt_index)
        if variables & reassigned:
            groups.append(current)
            current = [hit]
        else:
            current.append(hit)
    if current:
        groups.append(current)
    return groups


def _disjoint(occurrences: list[Occurrence]) -> list[Occurrence]:
    """Greedy maximal pairwise-disjoint subset (earliest-end first per site)."""
    chosen: list[Occurrence] = []
    by_site: dict[int, list[Occurrence]] = {}
    for occ in sorted(occurrences, key=lambda o: (o.site_id, o.end, o.start)):
        taken = by_site.setdefault(occ.site_id, [])
        if all(occ.span[0] > prev.span[1] or occ.span[1] < prev.span[0]
               for prev in taken):
            taken.append(occ)
            chosen.append(occ)
    return chosen


def _preserves_order(chains: ProgramChains, occurrences: list[Occurrence]) -> bool:
    """Order-preserving: every occurrence is an original-association subtree
    and all occurrences share one orientation (reuse needs no transpose)."""
    if not occurrences:
        return False
    orientations = {occ.reversed_orientation for occ in occurrences}
    if len(orientations) > 1:
        return False
    return all(span_in_original_order(chains.site(occ.site_id), occ.start, occ.end)
               for occ in occurrences)
