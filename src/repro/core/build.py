"""Building phase of adaptive elimination (§4.3.1).

For every chain site this module prepares the *span table*: the estimated
sketch of every contiguous operand span and the price of every candidate
multiply ``O(I_l, I_r)`` (an operator whose inputs are the coordinate spans
``[i..k]`` and ``[k+1..j]``, exactly the paper's operator naming). On top of
the tables it computes each elimination option's *shared cost* — what
computing the option's subexpression once costs (amortized over the loop
for LSE, apportioned over occurrences for CSE) — which the probing phase
consumes as candidate costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import OptimizerError
from ..lang.ast import Expr, MatMul, Transpose
from ..lang.program import Assign, WhileLoop
from .chains import ChainSite, Operand, ProgramChains
from .cost.evaluate import ProgramCostEvaluator
from .cost.model import CostModel
from .options import EliminationOption
from .sparsity.base import Sketch

INFINITY = float("inf")


# ----------------------------------------------------------------------
# Sketch environments per statement
# ----------------------------------------------------------------------
def statement_sketch_envs(chains: ProgramChains, model: CostModel,
                          input_sketches: dict[str, Sketch]) -> list[dict[str, Sketch]]:
    """Sketch environment in effect before each normalized statement.

    Mirrors the two-pass loop handling of the type checker so loop-carried
    variables are sketched at their sparsity steady state.
    """
    evaluator = ProgramCostEvaluator(model)
    env: dict[str, Sketch] = dict(input_sketches)
    envs: list[dict[str, Sketch]] = [dict() for _ in chains.statements]

    def run(statements, record: bool, index_of: dict[int, int]) -> None:
        for stmt in statements:
            if isinstance(stmt, Assign):
                stmt_index = index_of.get(id(stmt))
                if record and stmt_index is not None:
                    envs[stmt_index] = dict(env)
                _seconds, sketch = evaluator._price_expr(stmt.expr, env)
                env[stmt.target] = sketch
            elif isinstance(stmt, WhileLoop):
                # Pass 1: settle; pass 2: record.
                for loop_stmt in stmt.assignments():
                    _seconds, sketch = evaluator._price_expr(loop_stmt.expr, env)
                    env[loop_stmt.target] = sketch
                for loop_stmt in stmt.assignments():
                    stmt_index = index_of.get(id(loop_stmt))
                    if record and stmt_index is not None:
                        envs[stmt_index] = dict(env)
                    _seconds, sketch = evaluator._price_expr(loop_stmt.expr, env)
                    env[loop_stmt.target] = sketch

    index_of = {id(ns.assign): ns.index for ns in chains.statements}
    run(chains.program.statements, record=True, index_of=index_of)
    return envs


# ----------------------------------------------------------------------
# Span tables
# ----------------------------------------------------------------------
@dataclass
class SpanTable:
    """Sketches and plain DP costs for all spans of one chain site."""

    site: ChainSite
    #: Region weight: loop iterations for in-loop sites, 1 for prologue.
    weight: float
    sketches: dict[tuple[int, int], Sketch] = field(default_factory=dict)
    #: Price in *program-total* seconds of the operator joining two spans.
    op_cost: dict[tuple[int, int, int], float] = field(default_factory=dict)
    #: Plain (no options) minimum accumulated cost per span, program-total.
    plain_cost: dict[tuple[int, int], float] = field(default_factory=dict)
    #: Chosen split per span for the plain plan.
    plain_split: dict[tuple[int, int], int] = field(default_factory=dict)
    #: Fused mmchain op cost per span [i, j] where operands i, i+1 are the
    #: Xᵀ, X twin pair (program-total seconds; absent when not applicable).
    fused_cost: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return len(self.site)

    def sketch(self, start: int, end: int) -> Sketch:
        return self.sketches[(start, end)]


def build_span_table(site: ChainSite, model: CostModel,
                     operand_sketches: list[Sketch], weight: float) -> SpanTable:
    """Fill a site's span table: sketches, operator prices, plain DP."""
    table = SpanTable(site=site, weight=weight)
    n = len(site)
    for i in range(n):
        table.sketches[(i, i)] = operand_sketches[i]
        table.plain_cost[(i, i)] = 0.0
    for width in range(2, n + 1):
        for i in range(0, n - width + 1):
            j = i + width - 1
            # Canonical span sketch from the leftmost split; approximate
            # estimators may be order-sensitive, but one consistent sketch
            # per span keeps the DP well-defined.
            left = table.sketches[(i, i)]
            right = table.sketches[(i + 1, j)] if width > 2 else table.sketches[(j, j)]
            table.sketches[(i, j)] = model.estimator.matmul(left, right)
    for width in range(2, n + 1):
        for i in range(0, n - width + 1):
            j = i + width - 1
            best = INFINITY
            best_k = i
            for k in range(i, j):
                cost = _operator_cost(table, model, i, k, j)
                total = table.plain_cost[(i, k)] + table.plain_cost[(k + 1, j)] + cost
                if total < best:
                    best = total
                    best_k = k
            fused = _fused_mmchain_cost(table, model, i, j)
            if fused is not None:
                table.fused_cost[(i, j)] = fused
                total = table.plain_cost[(i + 2, j)] + fused
                if total < best:
                    best = total
                    best_k = FUSED_SPLIT
            table.plain_cost[(i, j)] = best
            table.plain_split[(i, j)] = best_k
    return table


#: plain_split sentinel: span computed as fused mmchain t(X) %*% (X %*% rest).
FUSED_SPLIT = -2


def _fused_mmchain_cost(table: SpanTable, model: CostModel,
                        i: int, j: int) -> float | None:
    """Op cost of computing span [i, j] as t(X) %*% (X %*% [i+2, j]).

    Applicable when the leading pair is an explicit Xᵀ, X twin and either
    the policy's mmchain column constraint admits X (SystemDS's fusion,
    which the SPORES engine leans on — §6.2.2) or the policy enables
    cost-priced fusion, which drops the structural bound entirely: the DP
    compares the fused price against the split alternatives, so an
    unprofitable chain simply loses on cost.
    """
    if j < i + 2:
        return None
    ops = table.site.operands
    first, second = ops[i], ops[i + 1]
    if not first.transposed or first.symmetric:
        return None
    if second.transposed and not second.symmetric:
        return None
    if first.base != second.base:
        return None
    x_meta = model.meta(table.sketches[(i + 1, i + 1)])
    if not model.policy.fuse \
            and not model.policy.mmchain_applicable_cols(x_meta.cols):
        return None
    from ..runtime.pricing import price_mmchain
    v_meta = model.meta(table.sketches[(i + 2, j)])
    out_meta = model.meta(table.sketches[(i, j)])
    price = price_mmchain(x_meta, v_meta, out_meta, model.config, model.policy)
    return table.weight * price.seconds


def _operator_cost(table: SpanTable, model: CostModel, i: int, k: int, j: int) -> float:
    """Program-total price of multiplying span [i,k] by [k+1,j]."""
    key = (i, k, j)
    cached = table.op_cost.get(key)
    if cached is not None:
        return cached
    from ..runtime.pricing import price_matmul
    left_meta = model.meta(table.sketches[(i, k)])
    right_meta = model.meta(table.sketches[(k + 1, j)])
    out_meta = model.meta(table.sketches[(i, j)])
    price = price_matmul(left_meta, right_meta, out_meta, model.config, model.policy)
    cost = table.weight * price.seconds
    table.op_cost[key] = cost
    return cost


def build_chain_expr(site_operands: list[Operand], splits: dict[tuple[int, int], int],
                     start: int, end: int) -> Expr:
    """Materialize the AST of a span under recorded split decisions.

    The :data:`FUSED_SPLIT` sentinel emits the mmchain-shaped AST
    ``t(X) %*% (X %*% rest)``, which the executor and the cost evaluator
    both recognize and fuse.
    """
    if start == end:
        return site_operands[start].to_expr()
    k = splits[(start, end)]
    if k == FUSED_SPLIT:
        rest = build_chain_expr(site_operands, splits, start + 2, end)
        return MatMul(site_operands[start].to_expr(),
                      MatMul(site_operands[start + 1].to_expr(), rest))
    left = build_chain_expr(site_operands, splits, start, k)
    right = build_chain_expr(site_operands, splits, k + 1, end)
    return MatMul(left, right)


# ----------------------------------------------------------------------
# Option shared costs
# ----------------------------------------------------------------------
@dataclass
class OptionCosting:
    """The candidate cost of one elimination option (program-total units)."""

    option: EliminationOption
    #: Cost of producing the shared value once (incl. hoisting persist for LSE).
    shared_cost: float
    #: shared_cost / number of occurrences — the paper's apportioned cost.
    apportioned: float
    #: Sum of the plain costs of the occurrence spans it replaces.
    replaced_cost: float
    #: Price of one *materialized* transpose of the shared value (charged
    #: per iteration when an opposite-orientation occurrence covers a whole
    #: chain block, so the transpose cannot fuse into a multiply).
    reuse_transpose_seconds: float = 0.0

    @property
    def estimated_saving(self) -> float:
        return self.replaced_cost - self.shared_cost

    def activation_cost(self, occurrence, site_len: int, weight: float) -> float:
        """Cost of activating one occurrence in the probing DP.

        The apportioned share, plus a materialized-transpose penalty when
        the occurrence needs the opposite orientation and spans the whole
        block (mid-chain reads fuse their transpose into the multiply).
        """
        cost = self.apportioned
        if self.option.needs_transpose(occurrence) and occurrence.width == site_len:
            cost += weight * self.reuse_transpose_seconds
        return cost


def cost_option(option: EliminationOption, chains: ProgramChains, model: CostModel,
                tables: dict[int, SpanTable],
                envs: list[dict[str, Sketch]]) -> OptionCosting:
    """Price an option: one shared computation versus the spans it replaces."""
    first = option.occurrences[0]
    first_site = chains.site(first.site_id)
    env = envs[first_site.stmt_index]
    operand_sketches = [_operand_sketch(op, env, model) for op in option.operands]
    # The shared value is computed once: in the prologue for LSE (then
    # persisted), or once per iteration for an in-loop CSE.
    if option.is_lse:
        unit_cost = _standalone_chain_cost(option, model, operand_sketches, weight=1.0)
        persist = model.persist(_chain_result_sketch(model, operand_sketches)).seconds
        shared = unit_cost + persist
    else:
        weight = float(chains.iterations) if first_site.in_loop else 1.0
        shared = _standalone_chain_cost(option, model, operand_sketches, weight)
    replaced = 0.0
    for occ in option.occurrences:
        table = tables[occ.site_id]
        replaced += table.plain_cost[(occ.start, occ.end)]
    from ..runtime.pricing import price_transpose
    result_sketch = _chain_result_sketch(model, operand_sketches)
    transpose_price = price_transpose(model.meta(result_sketch), model.config,
                                      model.policy).seconds
    return OptionCosting(option=option, shared_cost=shared,
                         apportioned=shared / len(option.occurrences),
                         replaced_cost=replaced,
                         reuse_transpose_seconds=transpose_price)


def _standalone_chain_cost(option: EliminationOption, model: CostModel,
                           operand_sketches: list[Sketch], weight: float) -> float:
    """Optimal cost of computing the option's chain once (times weight)."""
    if len(operand_sketches) == 1:
        return 0.0
    pseudo_site = ChainSite(site_id=-1, stmt_index=-1,
                            operands=list(option.operands),
                            coords=list(range(len(option.operands))),
                            in_loop=False)
    table = build_span_table(pseudo_site, model, operand_sketches, weight)
    return table.plain_cost[(0, len(operand_sketches) - 1)]


def _chain_result_sketch(model: CostModel, operand_sketches: list[Sketch]) -> Sketch:
    result = operand_sketches[0]
    for sketch in operand_sketches[1:]:
        result = model.estimator.matmul(result, sketch)
    return result


def _operand_sketch(operand: Operand, env: dict[str, Sketch], model: CostModel) -> Sketch:
    """Sketch of one operand occurrence (orientation applied)."""
    evaluator = ProgramCostEvaluator(model)
    try:
        _seconds, sketch = evaluator._price_expr(operand.base, env)
    except OptimizerError:
        # Opaque operand referencing a not-yet-sketched temp; fall back to
        # metadata via type inference is impossible here, so treat as dense.
        raise
    if operand.transposed and not operand.symmetric:
        return model.estimator.transpose(sketch)
    return sketch


def build_all_tables(chains: ProgramChains, model: CostModel,
                     envs: list[dict[str, Sketch]],
                     workers: int = 1) -> dict[int, SpanTable]:
    """Span tables for every chain site of the program.

    Sites are independent, so with ``workers > 1`` the tables are built on
    the candidate-pricing pool; results are keyed by site, making the dict
    identical to the serial build.
    """
    from .parallel import parallel_map

    def build(site: ChainSite) -> SpanTable:
        env = envs[site.stmt_index]
        sketches = [_operand_sketch(op, env, model) for op in site.operands]
        weight = float(chains.iterations) if site.in_loop else 1.0
        return build_span_table(site, model, sketches, weight)

    tables = parallel_map(build, chains.sites, workers)
    return {site.site_id: table for site, table in zip(chains.sites, tables)}
