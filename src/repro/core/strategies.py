"""Elimination strategies: conservative, aggressive, adaptive (§6.3.1).

* **conservative** — apply only options that follow the original execution
  order of operators (after all operator-order optimizations, unlike
  SystemDS which applies CSE first and can block later rewrites).
* **aggressive** — apply as many options as possible, prioritizing the ones
  that *change* the original execution order, then the rest.
* **adaptive** — ReMac: evaluate options with the cost model and pick the
  efficient combination via the DP of :mod:`repro.core.probe` (or the
  brute-force enumerator when configured as the baseline).
* **automatic** — blind automatic elimination (§6.2.2): apply as many of
  the found options as possible, widest subexpressions first.
* **none** — no elimination.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..config import OptimizerConfig
from .build import build_all_tables, cost_option, statement_sketch_envs
from .chains import ProgramChains
from .cost.model import CostModel
from .enumerate import enumerate_combinations
from .options import EliminationOption, options_contradict
from .parallel import parallel_map, resolve_workers
from .probe import probe
from .sparsity.base import Sketch

STRATEGIES = ("none", "conservative", "aggressive", "adaptive", "automatic")


@dataclass
class StrategyResult:
    """Chosen options plus planning diagnostics."""

    chosen: list[EliminationOption] = field(default_factory=list)
    strategy: str = "none"
    wall_seconds: float = 0.0
    notes: dict = field(default_factory=dict)


def choose_options(strategy: str, chains: ProgramChains, model: CostModel,
                   options: list[EliminationOption],
                   input_sketches: dict[str, Sketch],
                   config: OptimizerConfig | None = None) -> StrategyResult:
    """Dispatch to the requested elimination strategy.

    ``config.pricing_workers`` fans independent candidate pricing out over
    a thread pool (1 = serial); either way the chosen plan and predicted
    cost are identical — parallelism never reorders a cost reduction.
    """
    config = config or OptimizerConfig()
    workers = resolve_workers(config.pricing_workers)
    started = time.perf_counter()
    if strategy == "none":
        result = StrategyResult(strategy=strategy)
    elif strategy == "conservative":
        # Cost-based selection over the order-preserving subset only: the
        # paper's conservative applies CSE "after all optimizations
        # improving the operator order", i.e. it never trades order for
        # reuse — but it does not apply reuses that lose outright either.
        eligible = [o for o in options if o.preserves_order]
        outcome = probe(chains, model, eligible, input_sketches,
                        workers=workers)
        result = StrategyResult(chosen=outcome.chosen, strategy=strategy,
                                notes={"eligible": len(eligible),
                                       "chain_cost": outcome.chain_cost})
    elif strategy == "aggressive":
        result = _greedy(chains, model, options, input_sketches,
                         predicate=lambda o: True,
                         order_changing_first=True, strategy=strategy,
                         workers=workers)
    elif strategy == "automatic":
        result = _maximal(options)
    elif strategy == "adaptive":
        result = _adaptive(chains, model, options, input_sketches, config,
                           workers)
    else:
        raise ValueError(f"unknown strategy {strategy!r}; known: {STRATEGIES}")
    result.wall_seconds = time.perf_counter() - started
    result.notes.setdefault("pricing_workers", workers)
    return result


def _adaptive(chains: ProgramChains, model: CostModel,
              options: list[EliminationOption],
              input_sketches: dict[str, Sketch],
              config: OptimizerConfig, workers: int = 1) -> StrategyResult:
    if config.combiner == "dp":
        outcome = probe(chains, model, options, input_sketches,
                        workers=workers)
        return StrategyResult(chosen=outcome.chosen, strategy="adaptive",
                              notes={"chain_cost": outcome.chain_cost,
                                     "plain_cost": outcome.plain_cost,
                                     "entries": outcome.entries_explored})
    if config.combiner in ("enum-dfs", "enum-bfs"):
        order = config.combiner.split("-")[1]
        outcome = enumerate_combinations(
            chains, model, options, input_sketches, order=order,
            option_limit=config.enum_option_limit, workers=workers)
        return StrategyResult(chosen=outcome.chosen, strategy="adaptive",
                              notes={"chain_cost": outcome.chain_cost,
                                     "plain_cost": outcome.plain_cost,
                                     "combinations": outcome.combinations_evaluated,
                                     "budget_exhausted": outcome.budget_exhausted})
    raise ValueError(f"unknown combiner {config.combiner!r}")


def _greedy(chains: ProgramChains, model: CostModel,
            options: list[EliminationOption],
            input_sketches: dict[str, Sketch], predicate,
            order_changing_first: bool, strategy: str,
            require_positive_saving: bool = False,
            workers: int = 1) -> StrategyResult:
    """Greedy compatible set in a fixed priority order.

    The aggressive strategy does not consult the cost model to *reject*
    options (blind application is its point); the conservative strategy
    skips options without an estimated saving, because on this substrate an
    order-preserving reuse still pays a temp materialization (in SystemDS a
    same-order reuse is a free by-reference rewrite).
    """
    eligible = [o for o in options if predicate(o)]
    envs = statement_sketch_envs(chains, model, input_sketches)
    tables = build_all_tables(chains, model, envs, workers=workers)
    all_savings = parallel_map(
        lambda o: cost_option(o, chains, model, tables, envs).estimated_saving,
        eligible, workers)
    savings = {o.option_id: saving
               for o, saving in zip(eligible, all_savings)}
    if require_positive_saving:
        eligible = [o for o in eligible if savings[o.option_id] > 0.0]

    def priority(option: EliminationOption):
        order_changing = not option.preserves_order
        primary = order_changing if order_changing_first else not order_changing
        return (not primary, -savings[option.option_id])

    chosen: list[EliminationOption] = []
    for option in sorted(eligible, key=priority):
        if all(not options_contradict(option, taken) for taken in chosen):
            chosen.append(option)
    return StrategyResult(chosen=chosen, strategy=strategy,
                          notes={"eligible": len(eligible)})


def _maximal(options: list[EliminationOption]) -> StrategyResult:
    """Apply as many options as possible (blind automatic elimination)."""
    chosen: list[EliminationOption] = []
    chosen_keys: set[str] = set()
    # LSE first (hoisting dominates an in-loop CSE of the same key), then
    # widest subexpressions.
    ordered = sorted(options,
                     key=lambda o: (o.is_lse,
                                    max(occ.width for occ in o.occurrences),
                                    len(o.occurrences)),
                     reverse=True)
    for option in ordered:
        if option.key in chosen_keys:
            continue  # an equal-key option (e.g. its LSE twin) already won
        if all(not options_contradict(option, taken) for taken in chosen):
            chosen.append(option)
            chosen_keys.add(option.key)
    return StrategyResult(chosen=chosen, strategy="automatic",
                          notes={"found": len(options)})
