"""ReMac core: automatic + adaptive redundancy elimination."""

from .chains import ChainSite, Operand, ProgramChains, build_chains
from .costgraph import CostGraph, build_cost_graph
from .crossblock import CrossBlockOption, CrossBlockResult, crossblock_search
from .enumerate import EnumResult, enumerate_combinations
from .normalize import expand_distributive, normalize, push_down_transposes
from .optimizer import ReMacOptimizer
from .parallel import parallel_map, resolve_workers
from .plancache import (
    DataTokens,
    InputSketchMemo,
    PlanCache,
    PlanCacheStats,
    plan_fingerprint,
)
from .options import (
    CSE,
    LSE,
    EliminationOption,
    Occurrence,
    conflict_free,
    count_contradictions,
    options_contradict,
)
from .probe import ProbeResult, probe
from .rewrite import rewrite_program
from .search import SearchResult, blockwise_search, explicit_cse_options
from .spores import SporesResult, mmchain_applicable, spores_search, supports_program
from .strategies import STRATEGIES, StrategyResult, choose_options
from .treewise import (
    TreewiseResult,
    catalan,
    plan_tree_count,
    program_plan_count,
    treewise_search,
)

__all__ = [
    "ChainSite", "Operand", "ProgramChains", "build_chains",
    "CostGraph", "build_cost_graph",
    "CrossBlockOption", "CrossBlockResult", "crossblock_search",
    "EnumResult", "enumerate_combinations",
    "normalize", "push_down_transposes", "expand_distributive",
    "ReMacOptimizer",
    "DataTokens", "InputSketchMemo", "PlanCache", "PlanCacheStats",
    "plan_fingerprint",
    "parallel_map", "resolve_workers",
    "CSE", "LSE", "EliminationOption", "Occurrence",
    "options_contradict", "conflict_free", "count_contradictions",
    "ProbeResult", "probe",
    "rewrite_program",
    "SearchResult", "blockwise_search", "explicit_cse_options",
    "SporesResult", "spores_search", "mmchain_applicable", "supports_program",
    "STRATEGIES", "StrategyResult", "choose_options",
    "TreewiseResult", "treewise_search", "catalan", "plan_tree_count",
    "program_plan_count",
]
