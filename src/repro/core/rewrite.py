"""Rewriting: apply chosen elimination options to produce the final program.

Given the options a strategy picked, this module materializes the plan:

* every LSE gets a temporary assigned *before the loop* (then persisted by
  the runtime), e.g. ``T = t(A) %*% A``;
* every CSE gets a temporary right before its first occurrence;
* each chain site has its chosen occurrence spans replaced by temp reads
  (transposed reads for occurrences of the opposite orientation) and the
  remaining chain re-parenthesized to the cost-model-optimal association;
* temp definitions reuse other, narrower chosen temps (so picking both
  ``AᵀA`` and ``AᵀAd`` computes the latter from the former).

The output is a plain :class:`~repro.lang.program.Program` the executor can
run — and that a user could have written by hand, which is the paper's
point about the 1391-option programming burden.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OptimizerError
from ..lang.ast import (
    Add,
    Call,
    Compare,
    ElemDiv,
    ElemMul,
    Expr,
    Literal,
    MatMul,
    MatrixRef,
    Neg,
    ScalarRef,
    Sub,
    Transpose,
)
from ..lang.program import Assign, Program, Statement, WhileLoop
from .build import build_chain_expr, build_span_table, statement_sketch_envs
from .chains import ChainPlaceholder, ChainSite, Operand, ProgramChains
from .cost.model import CostModel
from .options import EliminationOption, Occurrence
from .sparsity.base import Sketch

TEMP_PREFIX = "tREMAC"


@dataclass
class _TempInfo:
    option: EliminationOption
    name: str
    #: Operand list in the temp's stored orientation.
    operands: list[Operand]
    sketch: Sketch
    #: Statement index of the first occurrence (placement anchor).
    first_stmt: int
    in_loop: bool


def rewrite_program(chains: ProgramChains, chosen: list[EliminationOption],
                    model: CostModel, input_sketches: dict[str, Sketch],
                    temp_prefix: str = TEMP_PREFIX) -> Program:
    """Build the rewritten program applying ``chosen`` options."""
    envs = statement_sketch_envs(chains, model, input_sketches)
    temps = _plan_temps(chains, chosen, model, envs, temp_prefix)
    site_exprs = _rewrite_sites(chains, chosen, temps, model, envs)
    temp_stmts = _temp_statements(chains, temps, model, envs)
    return _reassemble(chains, site_exprs, temp_stmts)


# ----------------------------------------------------------------------
# Temp planning
# ----------------------------------------------------------------------
def _plan_temps(chains: ProgramChains, chosen: list[EliminationOption],
                model: CostModel, envs,
                temp_prefix: str = TEMP_PREFIX) -> dict[int, _TempInfo]:
    temps: dict[int, _TempInfo] = {}
    for option in chosen:
        first = min(option.occurrences,
                    key=lambda o: chains.site(o.site_id).stmt_index)
        first_site = chains.site(first.site_id)
        operands = list(option.operands)
        if option.temp_reversed:
            operands = [op.flipped() for op in reversed(operands)]
        env = envs[first_site.stmt_index]
        sketch = _chain_sketch(model, operands, env)
        temps[option.option_id] = _TempInfo(
            option=option,
            name=f"{temp_prefix}{option.option_id}",
            operands=operands,
            sketch=sketch,
            first_stmt=first_site.stmt_index,
            in_loop=first_site.in_loop and not option.is_lse,
        )
    return temps


def _chain_sketch(model: CostModel, operands: list[Operand], env) -> Sketch:
    from .build import _operand_sketch
    sketches = [_operand_sketch(op, env, model) for op in operands]
    result = sketches[0]
    for sketch in sketches[1:]:
        result = model.estimator.matmul(result, sketch)
    return result


# ----------------------------------------------------------------------
# Site rewriting
# ----------------------------------------------------------------------
def _rewrite_sites(chains: ProgramChains, chosen: list[EliminationOption],
                   temps: dict[int, _TempInfo], model: CostModel,
                   envs) -> dict[int, Expr]:
    # Collect chosen occurrences per site, dropping nested-inside-another.
    per_site: dict[int, list[tuple[EliminationOption, Occurrence]]] = {}
    for option in chosen:
        for occ in option.occurrences:
            per_site.setdefault(occ.site_id, []).append((option, occ))
    site_exprs: dict[int, Expr] = {}
    for site in chains.sites:
        picks = _select_site_occurrences(per_site.get(site.site_id, []))
        operands, sketches = _substituted_operands(chains, site, picks, temps,
                                                   model, envs)
        site_exprs[site.site_id] = _parenthesize(site, operands, sketches, model,
                                                 chains)
    return site_exprs


def _select_site_occurrences(picks: list[tuple[EliminationOption, Occurrence]]):
    """Keep outermost, pairwise-disjoint chosen occurrences of one site."""
    ordered = sorted(picks, key=lambda p: (p[1].width), reverse=True)
    kept: list[tuple[EliminationOption, Occurrence]] = []
    for option, occ in ordered:
        nested = False
        for _k_option, k_occ in kept:
            if k_occ.start <= occ.start and occ.end <= k_occ.end:
                nested = True  # inner occurrence vanishes into the outer read
                break
            if occ.overlaps_properly(k_occ):
                raise OptimizerError(
                    f"chosen occurrences overlap: {occ} vs {k_occ}")
        if not nested:
            kept.append((option, occ))
    return sorted(kept, key=lambda p: p[1].start)


def _substituted_operands(chains: ProgramChains, site: ChainSite, picks,
                          temps: dict[int, _TempInfo], model: CostModel, envs):
    from .build import _operand_sketch
    env = envs[site.stmt_index]
    replacements = {occ.start: (option, occ) for option, occ in picks}
    operands: list[Operand] = []
    sketches: list[Sketch] = []
    position = 0
    n = len(site)
    while position < n:
        if position in replacements:
            option, occ = replacements[position]
            info = temps[option.option_id]
            transposed = option.needs_transpose(occ)
            operands.append(Operand(
                base=MatrixRef(info.name), transposed=transposed,
                symbol=info.name, symmetric=option.palindromic,
                loop_constant=option.is_lse))
            sketch = info.sketch
            if transposed:
                sketch = model.estimator.transpose(sketch)
            sketches.append(sketch)
            position = occ.end + 1
        else:
            operand = site.operands[position]
            operands.append(operand)
            sketches.append(_operand_sketch(operand, env, model))
            position += 1
    return operands, sketches


def _parenthesize(site: ChainSite, operands: list[Operand],
                  sketches: list[Sketch], model: CostModel,
                  chains: ProgramChains) -> Expr:
    if len(operands) == 1:
        return operands[0].to_expr()
    pseudo = ChainSite(site_id=site.site_id, stmt_index=site.stmt_index,
                       operands=operands, coords=list(range(len(operands))),
                       in_loop=site.in_loop)
    weight = float(chains.iterations) if site.in_loop else 1.0
    table = build_span_table(pseudo, model, sketches, weight)
    return build_chain_expr(operands, table.plain_split, 0, len(operands) - 1)


# ----------------------------------------------------------------------
# Temp definitions
# ----------------------------------------------------------------------
def _temp_statements(chains: ProgramChains, temps: dict[int, _TempInfo],
                     model: CostModel, envs) -> dict[int, _TempInfo | Assign]:
    """Build each temp's defining assignment, reusing narrower temps."""
    statements: dict[int, Assign] = {}
    infos = sorted(temps.values(), key=lambda t: len(t.operands))
    for info in infos:
        operands = list(info.operands)
        # Substitute strictly narrower chosen temps into this definition.
        for other in infos:
            if other is info or len(other.operands) >= len(operands):
                continue
            operands = _substitute_tokens(operands, other, model)
        env = envs[info.first_stmt]
        sketches = []
        from .build import _operand_sketch
        for op in operands:
            if op.symbol in {t.name for t in infos}:
                owner = next(t for t in infos if t.name == op.symbol)
                sketch = owner.sketch
                if op.transposed and not op.symmetric:
                    sketch = model.estimator.transpose(sketch)
                sketches.append(sketch)
            else:
                sketches.append(_operand_sketch(op, env, model))
        pseudo = ChainSite(site_id=-1, stmt_index=info.first_stmt,
                           operands=operands,
                           coords=list(range(len(operands))), in_loop=False)
        table = build_span_table(pseudo, model, sketches, 1.0)
        expr = build_chain_expr(operands, table.plain_split, 0, len(operands) - 1) \
            if len(operands) > 1 else operands[0].to_expr()
        statements[info.option.option_id] = Assign(info.name, expr)
    return {gid: (temps[gid], statements[gid]) for gid in temps}


def _substitute_tokens(operands: list[Operand], other: _TempInfo,
                       model: CostModel) -> list[Operand]:
    """Replace runs matching ``other``'s chain with reads of its temp."""
    del model
    target_fwd = [op.token() for op in other.operands]
    target_rev = [op.flipped().token() for op in reversed(other.operands)]
    width = len(target_fwd)
    result: list[Operand] = []
    i = 0
    tokens = [op.token() for op in operands]
    while i < len(operands):
        window = tokens[i:i + width]
        if window == target_fwd:
            result.append(Operand(MatrixRef(other.name), False, other.name,
                                  other.option.palindromic, other.option.is_lse))
            i += width
        elif window == target_rev and not other.option.palindromic:
            result.append(Operand(MatrixRef(other.name), True, other.name,
                                  False, other.option.is_lse))
            i += width
        else:
            result.append(operands[i])
            i += 1
    return result


# ----------------------------------------------------------------------
# Program reassembly
# ----------------------------------------------------------------------
def _reassemble(chains: ProgramChains, site_exprs: dict[int, Expr],
                temp_stmts: dict[int, tuple[_TempInfo, Assign]]) -> Program:
    pre_loop: list[Assign] = []
    in_loop_by_anchor: dict[int, list[Assign]] = {}
    pre_anchor: dict[int, list[Assign]] = {}
    for _gid, (info, stmt) in sorted(temp_stmts.items(),
                                     key=lambda kv: len(kv[1][0].operands)):
        if info.option.is_lse:
            pre_loop.append(stmt)
        elif info.in_loop:
            in_loop_by_anchor.setdefault(info.first_stmt, []).append(stmt)
        else:
            pre_anchor.setdefault(info.first_stmt, []).append(stmt)

    rebuilt: list[Statement] = []
    cursor = 0  # index into chains.statements
    for stmt in chains.program.statements:
        if isinstance(stmt, Assign):
            normalized = chains.statements[cursor]
            rebuilt.extend(pre_anchor.get(cursor, ()))
            rebuilt.append(Assign(stmt.target,
                                  _fill_template(normalized.template, site_exprs)))
            cursor += 1
        elif isinstance(stmt, WhileLoop):
            rebuilt.extend(pre_loop)
            body: list[Statement] = []
            for loop_stmt in stmt.body:
                if not isinstance(loop_stmt, Assign):
                    raise OptimizerError("nested loops are not supported")
                normalized = chains.statements[cursor]
                body.extend(in_loop_by_anchor.get(cursor, ()))
                body.append(Assign(loop_stmt.target,
                                   _fill_template(normalized.template, site_exprs)))
                cursor += 1
            rebuilt.append(WhileLoop(condition=stmt.condition, body=tuple(body),
                                     max_iterations=stmt.max_iterations))
        else:  # pragma: no cover - defensive
            raise OptimizerError(f"unknown statement type {type(stmt).__name__}")
    rebuilt = _drop_dead_temps(rebuilt, {info.name for info, _ in temp_stmts.values()})
    return Program(statements=rebuilt, inputs=list(chains.program.inputs))


def _drop_dead_temps(statements: list[Statement],
                     temp_names: set[str]) -> list[Statement]:
    """Remove temp definitions nothing reads.

    A chosen occurrence can vanish when it is nested inside another chosen
    occurrence of the same site; if *all* of an option's occurrences vanish
    its temp would be computed (possibly once per iteration!) and never
    used. Iterate to a fixpoint because temps may only feed other dead
    temps.
    """
    while True:
        used: set[str] = set()

        def collect(stmts) -> None:
            for stmt in stmts:
                if isinstance(stmt, Assign):
                    used.update(stmt.expr.variables())
                else:
                    used.update(stmt.condition.variables())
                    collect(stmt.body)

        collect(statements)
        dead = temp_names - used
        if not dead:
            return statements
        statements = _filter_statements(statements, dead)
        temp_names = temp_names - dead


def _filter_statements(statements, dead: set[str]) -> list[Statement]:
    kept: list[Statement] = []
    for stmt in statements:
        if isinstance(stmt, Assign):
            if stmt.target not in dead:
                kept.append(stmt)
        else:
            kept.append(WhileLoop(condition=stmt.condition,
                                  body=tuple(_filter_statements(list(stmt.body), dead)),
                                  max_iterations=stmt.max_iterations))
    return kept


def _fill_template(template: Expr, site_exprs: dict[int, Expr]) -> Expr:
    if isinstance(template, ChainPlaceholder):
        return site_exprs[template.site_id]
    if isinstance(template, (MatrixRef, ScalarRef, Literal)):
        return template
    if isinstance(template, Transpose):
        return Transpose(_fill_template(template.child, site_exprs))
    if isinstance(template, Neg):
        return Neg(_fill_template(template.child, site_exprs))
    if isinstance(template, (Add, Sub, ElemMul, ElemDiv)):
        return type(template)(_fill_template(template.left, site_exprs),
                              _fill_template(template.right, site_exprs))
    if isinstance(template, Compare):
        return Compare(template.op, _fill_template(template.left, site_exprs),
                       _fill_template(template.right, site_exprs))
    if isinstance(template, Call):
        return Call(template.func,
                    tuple(_fill_template(a, site_exprs) for a in template.args))
    raise OptimizerError(f"cannot fill template node {type(template).__name__}")
