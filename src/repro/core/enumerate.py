"""Brute-force enumeration of elimination combinations (§6.3.3 baseline).

Enumerates subsets of the found options — depth-first or breadth-first —
and evaluates each complete combination with the cost model: the chain cost
of every site under *forced* occurrence spans plus each chosen option's
shared cost. This is the combinatorial explosion the paper's DP avoids:
its cost grows as 2^(number of options), so the enumerator takes a budget
of combinations to evaluate and reports whether it was exhausted (the
paper's GNMF enumeration ran for over three days).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations as iter_combinations

from .build import (
    OptionCosting,
    SpanTable,
    build_all_tables,
    cost_option,
    statement_sketch_envs,
)
from .chains import ProgramChains
from .cost.model import CostModel
from .options import EliminationOption, options_contradict
from .sparsity.base import Sketch

INFINITY = float("inf")


@dataclass
class EnumResult:
    """Outcome of brute-force combination enumeration."""

    chosen: list[EliminationOption] = field(default_factory=list)
    chain_cost: float = 0.0
    plain_cost: float = 0.0
    combinations_evaluated: int = 0
    budget_exhausted: bool = False
    wall_seconds: float = 0.0
    costings: dict[int, OptionCosting] = field(default_factory=dict)


def enumerate_combinations(chains: ProgramChains, model: CostModel,
                           options: list[EliminationOption],
                           input_sketches: dict[str, Sketch],
                           order: str = "dfs",
                           option_limit: int = 20,
                           combination_budget: int = 20000,
                           evaluation: str = "full",
                           workers: int = 1) -> EnumResult:
    """Evaluate option subsets exhaustively (within a budget).

    ``evaluation`` selects how each combination is priced:

    * ``"full"`` (the paper's baseline) — generate the rewritten plan and
      evaluate the whole program with the cost model. Faithful and
      expensive: this per-combination cost times the 2^n subsets is the
      "unaffordable overhead" of §4.1.
    * ``"incremental"`` — a forced-span chain DP over precomputed span
      tables. Much cheaper per combination; used by tests to cross-check
      the probing DP's plan quality on identical objectives.

    Combinations are independent, so ``workers > 1`` prices them on a
    thread pool. The min-cost reduction runs serially over the results in
    enumeration order (strict ``<``, first-found wins), so the chosen plan
    and cost are identical to the serial path.
    """
    from .parallel import parallel_map
    if order not in ("dfs", "bfs"):
        raise ValueError(f"order must be 'dfs' or 'bfs', got {order!r}")
    if evaluation not in ("full", "incremental"):
        raise ValueError(f"evaluation must be 'full' or 'incremental', "
                         f"got {evaluation!r}")
    started = time.perf_counter()
    envs = statement_sketch_envs(chains, model, input_sketches)
    tables = build_all_tables(chains, model, envs, workers=workers)
    all_costings = parallel_map(
        lambda opt: cost_option(opt, chains, model, tables, envs),
        options, workers)
    costings = {opt.option_id: costing
                for opt, costing in zip(options, all_costings)}
    result = EnumResult(costings=costings)
    result.plain_cost = sum(t.plain_cost[(0, t.n - 1)] for t in tables.values()
                            if t.n >= 2)

    # Keep the most promising options when there are too many to enumerate.
    considered = sorted(options,
                        key=lambda o: costings[o.option_id].estimated_saving,
                        reverse=True)[:option_limit]

    if evaluation == "full":
        evaluator = _FullPlanEvaluator(chains, model, input_sketches)
        best_cost = evaluator.cost_of(())
    else:
        evaluator = _CombinationEvaluator(chains, tables, costings)
        best_cost = result.plain_cost
    best: tuple[EliminationOption, ...] = ()

    if order == "dfs":
        subsets = _dfs_subsets(considered)
    else:
        subsets = _bfs_subsets(considered)
    batch: list[tuple[EliminationOption, ...]] = []
    for subset in subsets:
        if len(batch) >= combination_budget:
            result.budget_exhausted = True
            break
        batch.append(subset)
    result.combinations_evaluated = len(batch)
    costs = parallel_map(evaluator.cost_of, batch, workers)
    for subset, cost in zip(batch, costs):
        if cost < best_cost:
            best_cost = cost
            best = subset
    result.chain_cost = best_cost
    result.chosen = list(best)
    result.wall_seconds = time.perf_counter() - started
    return result


class _FullPlanEvaluator:
    """Prices a combination by generating and costing the complete plan."""

    def __init__(self, chains: ProgramChains, model: CostModel,
                 input_sketches: dict[str, Sketch]):
        from .cost.evaluate import ProgramCostEvaluator
        self.chains = chains
        self.model = model
        self.sketches = input_sketches
        self.evaluator = ProgramCostEvaluator(model)

    def cost_of(self, subset: tuple[EliminationOption, ...]) -> float:
        from ..errors import OptimizerError
        from .rewrite import rewrite_program
        try:
            rewritten = rewrite_program(self.chains, list(subset), self.model,
                                        self.sketches)
        except OptimizerError:
            return INFINITY  # unrealizable combination (overlapping picks)
        cost = self.evaluator.evaluate(rewritten, self.sketches,
                                       iterations=self.chains.iterations)
        return cost.total_seconds


def _dfs_subsets(options: list[EliminationOption]):
    """All compatible subsets, depth-first over include/exclude decisions."""
    n = len(options)

    def recurse(index: int, chosen: list[EliminationOption]):
        if index == n:
            yield tuple(chosen)
            return
        option = options[index]
        if all(not options_contradict(option, other) for other in chosen):
            chosen.append(option)
            yield from recurse(index + 1, chosen)
            chosen.pop()
        yield from recurse(index + 1, chosen)

    yield from recurse(0, [])


def _bfs_subsets(options: list[EliminationOption]):
    """All compatible subsets in order of increasing size."""
    for size in range(0, len(options) + 1):
        for combo in iter_combinations(options, size):
            compatible = True
            for i, left in enumerate(combo):
                for right in combo[i + 1:]:
                    if options_contradict(left, right):
                        compatible = False
                        break
                if not compatible:
                    break
            if compatible:
                yield combo


class _CombinationEvaluator:
    """Prices one option subset: forced-span chain DP plus shared costs."""

    def __init__(self, chains: ProgramChains, tables: dict[int, SpanTable],
                 costings: dict[int, OptionCosting]):
        self.chains = chains
        self.tables = tables
        self.costings = costings

    def cost_of(self, subset: tuple[EliminationOption, ...]) -> float:
        forced: dict[int, set[tuple[int, int]]] = {}
        for option in subset:
            for occ in option.occurrences:
                forced.setdefault(occ.site_id, set()).add(occ.span)
        # A chosen occurrence nested inside another chosen occurrence can
        # never activate (the outer span is read, not computed) — the
        # all-or-none contract is violated, so the combination is invalid.
        for spans in forced.values():
            ordered = sorted(spans)
            for i, a in enumerate(ordered):
                for b in ordered[i + 1:]:
                    if a != b and a[0] <= b[0] and b[1] <= a[1]:
                        return INFINITY
                    if a != b and b[0] <= a[0] and a[1] <= b[1]:
                        return INFINITY
        total = sum(self.costings[o.option_id].shared_cost for o in subset)
        # Whole-block opposite-orientation reuses pay a materialized
        # transpose per iteration (same penalty as the probing DP).
        for option in subset:
            costing = self.costings[option.option_id]
            for occ in option.occurrences:
                table = self.tables[occ.site_id]
                if option.needs_transpose(occ) and occ.width == table.n:
                    total += table.weight * costing.reuse_transpose_seconds
        for table in self.tables.values():
            spans = forced.get(table.site.site_id, set())
            cost = self._forced_chain_cost(table, spans)
            if cost == INFINITY:
                return INFINITY
            total += cost
        return total

    def _forced_chain_cost(self, table: SpanTable,
                           forced: set[tuple[int, int]]) -> float:
        """Interval DP where forced spans read the shared temp for free.

        Splits that cut through a forced span are disallowed — the plan must
        contain every forced span as a unit.
        """
        if not forced:
            return table.plain_cost[(0, table.n - 1)] if table.n >= 2 else 0.0
        n = table.n
        cost: dict[tuple[int, int], float] = {}
        for i in range(n):
            cost[(i, i)] = 0.0
        for width in range(2, n + 1):
            for i in range(0, n - width + 1):
                j = i + width - 1
                if (i, j) in forced:
                    cost[(i, j)] = 0.0
                    continue
                best = INFINITY
                for k in range(i, j):
                    # A split through a forced span makes it unmaterializable.
                    if any(i <= start <= k < end <= j for start, end in forced):
                        continue
                    candidate = cost[(i, k)] + cost[(k + 1, j)] \
                        + table.op_cost[(i, k, j)]
                    if candidate < best:
                        best = candidate
                cost[(i, j)] = best
        return cost[(0, n - 1)]


# ----------------------------------------------------------------------
# Fusion-region enumeration (compile-time report for the fusion layer)
# ----------------------------------------------------------------------
def enumerate_fusion_regions(program, model: CostModel,
                             input_sketches: dict[str, Sketch]) -> dict:
    """Enumerate fusable regions in a program and price each both ways.

    Walks every assignment (prologue statements once, loop bodies once) the
    way the cost evaluator does, finds the fusable element-wise regions and
    mmchain-shaped multiply chains, and prices fused vs unfused execution
    for each with the model's sketches. Returns an additive report the
    optimizer attaches to plan notes — advisory only: the executor and cost
    evaluator make the authoritative per-site decision with the same
    pricing functions, so this is the plan's fusion story, not its gate.
    """
    from ..lang.ast import (
        Add, Call, Compare, ElemDiv, ElemMul, Literal, MatMul, MatrixRef,
        Neg, ScalarRef, Sub, Transpose,
    )
    from ..lang.program import Assign, WhileLoop
    from ..runtime.fusion import find_ewise_region, mmchain_beats_unfused
    from .cost.evaluate import ProgramCostEvaluator, price_fused_region

    evaluator = ProgramCostEvaluator(model)
    env: dict[str, Sketch] = dict(input_sketches)
    env["__always__"] = model.scalar()
    regions: list[dict] = []

    def leaf_sketch(leaf) -> Sketch | None:
        if isinstance(leaf, Literal):
            return model.scalar()
        return env.get(leaf.name)

    def visit(expr) -> None:
        if isinstance(expr, (Add, Sub, ElemMul, ElemDiv, Neg)):
            region = find_ewise_region(expr)
            if region is not None:
                sketches = [leaf_sketch(leaf) for leaf in region.leaves]
                if all(sketch is not None for sketch in sketches):
                    estimate = price_fused_region(model, region, sketches)
                    if estimate is not None:
                        regions.append({
                            "kind": "ewise",
                            "members": estimate.member_count,
                            "fused_seconds": estimate.fused.seconds,
                            "unfused_seconds": estimate.unfused_seconds,
                            "selected": estimate.fuses,
                        })
                        return  # leaves are refs; nothing fusable below
        if isinstance(expr, MatMul) and isinstance(expr.left, Transpose) \
                and isinstance(expr.right, MatMul) \
                and expr.left.child == expr.right.left \
                and isinstance(expr.left.child, (MatrixRef, ScalarRef)) \
                and isinstance(expr.right.right, (MatrixRef, ScalarRef)):
            x = env.get(expr.left.child.name)
            v = env.get(expr.right.right.name)
            if x is not None and v is not None \
                    and not model.meta(x).is_scalar_like \
                    and not model.meta(v).is_scalar_like:
                x_meta, v_meta = model.meta(x), model.meta(v)
                fused = model.mmchain(x, v, exact_inner=True)
                inner = model.matmul(x, v)
                outer = model.matmul(x, inner.sketch, left_fused_transpose=True)
                unfused = inner.seconds + outer.seconds
                selected = model.policy.mmchain_applicable_cols(x_meta.cols) \
                    or mmchain_beats_unfused(x_meta, v_meta, 1.0, 1.0,
                                             model.config, model.policy)
                regions.append({
                    "kind": "mmchain",
                    "members": 2,
                    "fused_seconds": fused.seconds,
                    "unfused_seconds": unfused,
                    "selected": selected,
                })
                return
        for child in _expr_children(expr):
            visit(child)

    def walk(statements) -> None:
        for stmt in statements:
            if isinstance(stmt, Assign):
                visit(stmt.expr)
                try:
                    _seconds, sketch = evaluator._price_expr(stmt.expr, env)
                except Exception:
                    continue  # report stays best-effort; compile handles errors
                env[stmt.target] = sketch
            elif isinstance(stmt, WhileLoop):
                visit(stmt.condition)
                walk(stmt.body)

    walk(program.statements)
    selected = [r for r in regions if r["selected"]]
    return {
        "regions_found": len(regions),
        "regions_selected": len(selected),
        "predicted_fused_seconds": sum(r["fused_seconds"] for r in selected),
        "predicted_unfused_seconds": sum(r["unfused_seconds"] for r in selected),
        "regions": regions,
    }


def _expr_children(expr):
    """Immediate subexpressions of an AST node, for generic traversal."""
    from ..lang.ast import (
        Add, Call, Compare, ElemDiv, ElemMul, MatMul, Neg, Sub, Transpose,
    )
    if isinstance(expr, (MatMul, Add, Sub, ElemMul, ElemDiv, Compare)):
        return (expr.left, expr.right)
    if isinstance(expr, (Transpose, Neg)):
        return (expr.child,)
    if isinstance(expr, Call):
        return tuple(expr.args)
    return ()
