"""Elimination options: the unit the adaptive optimizer decides over.

An :class:`EliminationOption` is one redundant subexpression — a CSE (reuse
a value computed elsewhere this iteration) or an LSE (hoist a loop-constant
value out of the loop) — with the list of coordinate spans where it occurs.
Options may *contradict* (their spans properly overlap inside one chain, so
no single parenthesization realizes both, §2.2), which
:func:`options_contradict` detects.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce

from ..lang.ast import Expr, MatMul, Transpose
from .chains import ChainSite, Operand, ProgramChains

CSE = "cse"
LSE = "lse"


@dataclass(frozen=True)
class Occurrence:
    """One place a subexpression occurs: a span of a chain site."""

    site_id: int
    start: int  # 0-based inclusive operand index
    end: int
    #: True when this occurrence matches the canonical key in reverse —
    #: i.e. the occurrence is the *transpose* of the shared value.
    reversed_orientation: bool = False

    @property
    def span(self) -> tuple[int, int]:
        return (self.start, self.end)

    @property
    def width(self) -> int:
        return self.end - self.start + 1

    def overlaps_properly(self, other: "Occurrence") -> bool:
        """Partial overlap in the same site (not nested, not disjoint)."""
        if self.site_id != other.site_id:
            return False
        a, b = self.span, other.span
        if a[1] < b[0] or b[1] < a[0]:
            return False  # disjoint
        nested = (a[0] <= b[0] and b[1] <= a[1]) or (b[0] <= a[0] and a[1] <= b[1])
        return not nested

    def __repr__(self) -> str:
        arrow = "~T" if self.reversed_orientation else ""
        return f"[{self.site_id}:{self.start}-{self.end}{arrow}]"


@dataclass(frozen=True)
class EliminationOption:
    """A CSE or LSE candidate over one canonical subexpression."""

    option_id: int
    kind: str  # CSE or LSE
    key: str   # canonical chain string, e.g. "A' A"
    occurrences: tuple[Occurrence, ...]
    #: Canonical operand sequence (the direction matching ``key``).
    operands: tuple[Operand, ...]
    #: Whether the subexpression is loop-constant.
    loop_constant: bool = False
    #: Whether every occurrence follows the original association order —
    #: the options a conservative strategy may apply (§6.3.1).
    preserves_order: bool = False
    #: Whether the key equals its own transpose (e.g. AᵀA), making the
    #: shared value symmetric so reversed reuses need no transpose.
    palindromic: bool = False

    @property
    def is_cse(self) -> bool:
        return self.kind == CSE

    @property
    def is_lse(self) -> bool:
        return self.kind == LSE

    @property
    def temp_reversed(self) -> bool:
        """Orientation the shared temporary is stored in.

        The temp follows the majority of occurrences so that most reuses are
        direct reads; minority-orientation occurrences transpose it. For a
        palindromic key the value is symmetric and orientation is moot.
        """
        if self.palindromic:
            return False
        reversed_count = sum(1 for o in self.occurrences if o.reversed_orientation)
        return reversed_count * 2 > len(self.occurrences)

    def needs_transpose(self, occurrence: Occurrence) -> bool:
        """Whether this occurrence must transpose the shared temporary."""
        if self.palindromic:
            return False
        return occurrence.reversed_orientation != self.temp_reversed

    def canonical_expr(self) -> Expr:
        """AST of the canonical subexpression (left-deep association)."""
        exprs = [op.to_expr() for op in self.operands]
        return reduce(MatMul, exprs)

    def temp_expr(self) -> Expr:
        """AST computing the shared temporary in its stored orientation."""
        operands = self.operands
        if self.temp_reversed:
            operands = tuple(op.flipped() for op in reversed(operands))
        exprs = [op.to_expr() for op in operands]
        return reduce(MatMul, exprs)

    def occurrence_expr(self, temp: Expr, occurrence: Occurrence) -> Expr:
        """How an occurrence reads the shared temporary."""
        if self.needs_transpose(occurrence):
            return Transpose(temp)
        return temp

    def __repr__(self) -> str:
        occs = " ".join(repr(o) for o in self.occurrences)
        flags = []
        if self.loop_constant:
            flags.append("loop-const")
        if self.preserves_order:
            flags.append("orig-order")
        suffix = f" ({', '.join(flags)})" if flags else ""
        return f"{self.kind.upper()}<{self.key}>@{occs}{suffix}"


def options_contradict(left: EliminationOption, right: EliminationOption) -> bool:
    """Whether two options cannot coexist in one execution plan.

    Two options contradict when any of their occurrences properly overlap
    within the same chain — e.g. AᵀA (span 0-1) and Ad (span 1-2) inside
    AᵀAd: A cannot be multiplied with both Aᵀ and d first (§2.2).
    """
    for occ_l in left.occurrences:
        for occ_r in right.occurrences:
            if occ_l.overlaps_properly(occ_r):
                return True
    return False


def conflict_free(options: list[EliminationOption]) -> bool:
    """Whether a set of options is pairwise compatible."""
    for i, left in enumerate(options):
        for right in options[i + 1:]:
            if options_contradict(left, right):
                return False
    return True


def span_in_original_order(site: ChainSite, start: int, end: int) -> bool:
    """Whether [start, end] is a subtree of the site's original association."""
    if start == end:
        return True
    return (start, end) in site.original_spans


def count_contradictions(options: list[EliminationOption]) -> int:
    """Number of contradicting option pairs (reported by the benchmarks)."""
    count = 0
    for i, left in enumerate(options):
        for right in options[i + 1:]:
            if options_contradict(left, right):
                count += 1
    return count


def describe_options(options: list[EliminationOption],
                     chains: ProgramChains | None = None) -> str:
    """Multi-line human-readable dump used in logs and examples."""
    lines = []
    for option in options:
        lines.append(repr(option))
    del chains
    return "\n".join(lines)
