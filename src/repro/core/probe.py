"""Probing phase: dynamic programming with candidate costs (§4.3.2).

An interval DP per chain block computes, for every operand span, a table of
*candidate entries*: the minimum accumulated cost (Eqs. 7-8) keyed by which
option occurrences were activated inside the span (Eqs. 9-10 — the
"accumulated costs containing candidate costs"). Activating an occurrence
replaces its span's computation by the option's apportioned cost.

Because a CSE's apportioning is only valid when *every* occurrence of the
group activates, entries carrying a partially-activated group are discarded
at the group's joint upstream — the smallest scope containing all its
occurrences (site root for within-block groups, the program root for
cross-block groups). That withdrawal is the paper's "pick the whole group
of relevant CSE costs or none of them".

The complexity is polynomial in chain length with a bounded candidate-set
width, versus the exponential subset enumeration of
:mod:`repro.core.enumerate`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .build import (
    OptionCosting,
    SpanTable,
    build_all_tables,
    cost_option,
    statement_sketch_envs,
)
from .chains import ProgramChains
from .cost.model import CostModel
from .options import EliminationOption
from .sparsity.base import Sketch

INFINITY = float("inf")

#: One activated occurrence: (option_id, occurrence_index).
Pair = tuple[int, int]
#: Candidate key: the set of activated occurrences pending resolution.
Key = frozenset


@dataclass
class ProbeResult:
    """Outcome of the probing phase."""

    chosen: list[EliminationOption] = field(default_factory=list)
    #: Minimum accumulated chain cost over all sites (program-total seconds).
    chain_cost: float = 0.0
    #: Plain chain cost with no options, for the savings report.
    plain_cost: float = 0.0
    entries_explored: int = 0
    wall_seconds: float = 0.0
    costings: dict[int, OptionCosting] = field(default_factory=dict)

    @property
    def predicted_saving(self) -> float:
        return self.plain_cost - self.chain_cost


def probe(chains: ProgramChains, model: CostModel,
          options: list[EliminationOption],
          input_sketches: dict[str, Sketch],
          entry_cap: int = 128, global_cap: int = 512,
          workers: int = 1) -> ProbeResult:
    """Run building + probing; returns the chosen options and predicted cost.

    ``workers > 1`` prices independent candidates (span tables, per-option
    shared costs) on a thread pool; results are keyed per site/option, so
    the DP consumes exactly what the serial path would.
    """
    from .parallel import parallel_map
    started = time.perf_counter()
    envs = statement_sketch_envs(chains, model, input_sketches)
    tables = build_all_tables(chains, model, envs, workers=workers)
    all_costings = parallel_map(
        lambda opt: cost_option(opt, chains, model, tables, envs),
        options, workers)
    costings = {opt.option_id: costing
                for opt, costing in zip(options, all_costings)}
    result = _probe_with_tables(chains, tables, costings, options,
                                entry_cap, global_cap)
    result.wall_seconds = time.perf_counter() - started
    return result


def _probe_with_tables(chains: ProgramChains, tables: dict[int, SpanTable],
                       costings: dict[int, OptionCosting],
                       options: list[EliminationOption],
                       entry_cap: int, global_cap: int) -> ProbeResult:
    result = ProbeResult(costings=costings)
    by_id = {opt.option_id: opt for opt in options}
    group_size = {opt.option_id: len(opt.occurrences) for opt in options}
    #: site_id -> span -> list of pairs activatable there.
    activations: dict[int, dict[tuple[int, int], list[Pair]]] = {}
    #: option_id -> set of site_ids its occurrences live in.
    option_sites: dict[int, set[int]] = {}
    for opt in options:
        for occ_idx, occ in enumerate(opt.occurrences):
            activations.setdefault(occ.site_id, {}).setdefault(
                occ.span, []).append((opt.option_id, occ_idx))
            option_sites.setdefault(opt.option_id, set()).add(occ.site_id)

    # ------------------------------------------------------------------
    # Per-site interval DP with candidate keys
    # ------------------------------------------------------------------
    site_roots: list[tuple[int, dict[Key, float]]] = []
    for site in chains.sites:
        table = tables[site.site_id]
        n = len(site)
        state: dict[tuple[int, int], dict[Key, float]] = {}
        empty: Key = frozenset()
        for i in range(n):
            state[(i, i)] = {empty: 0.0}
        site_acts = activations.get(site.site_id, {})
        for width in range(2, n + 1):
            for i in range(0, n - width + 1):
                j = i + width - 1
                entries: dict[Key, float] = {}
                for k in range(i, j):
                    op_cost = table.op_cost[(i, k, j)]
                    left_entries = state[(i, k)]
                    right_entries = state[(k + 1, j)]
                    for key_l, cost_l in left_entries.items():
                        for key_r, cost_r in right_entries.items():
                            key = key_l | key_r
                            cost = cost_l + cost_r + op_cost
                            if cost < entries.get(key, INFINITY):
                                entries[key] = cost
                fused = table.fused_cost.get((i, j))
                if fused is not None:
                    for key, cost in state[(i + 2, j)].items():
                        total = cost + fused
                        if total < entries.get(key, INFINITY):
                            entries[key] = total
                for pair in site_acts.get((i, j), ()):
                    gid, occ_idx = pair
                    costing = costings[gid]
                    occurrence = by_id[gid].occurrences[occ_idx]
                    cost = costing.activation_cost(occurrence, n, table.weight)
                    key = frozenset((pair,))
                    if cost < entries.get(key, INFINITY):
                        entries[key] = cost
                result.entries_explored += len(entries)
                state[(i, j)] = _prune(entries, entry_cap)
        root = state[(0, n - 1)] if n >= 1 else {empty: 0.0}
        site_roots.append((site.site_id, root))
        result.plain_cost += table.plain_cost[(0, n - 1)] if n >= 2 else 0.0

    # ------------------------------------------------------------------
    # Program-level combination with joint-upstream resolution
    # ------------------------------------------------------------------
    combined: dict[Key, tuple[float, frozenset]] = {frozenset(): (0.0, frozenset())}
    processed_sites: set[int] = set()
    for site_id, root in site_roots:
        processed_sites.add(site_id)
        merged: dict[Key, tuple[float, frozenset]] = {}
        for key_g, (cost_g, applied) in combined.items():
            for key_s, cost_s in root.items():
                key = key_g | key_s
                cost = cost_g + cost_s
                current = merged.get(key)
                if current is None or cost < current[0]:
                    merged[key] = (cost, applied)
        combined = _resolve(merged, by_id, group_size, option_sites,
                            processed_sites)
        combined = _prune_global(combined, global_cap)
        result.entries_explored += len(combined)

    # Everything should be resolved now; pick the cheapest.
    best_cost = INFINITY
    best_applied: frozenset = frozenset()
    for key, (cost, applied) in combined.items():
        if key:
            continue  # unresolved/partial leftovers are invalid
        if cost < best_cost:
            best_cost = cost
            best_applied = applied
    result.chain_cost = best_cost if best_cost < INFINITY else result.plain_cost
    result.chosen = [by_id[gid] for gid in sorted(best_applied)]
    return result


def _resolve(entries: dict[Key, tuple[float, frozenset]],
             by_id: dict[int, EliminationOption],
             group_size: dict[int, int],
             option_sites: dict[int, set[int]],
             processed: set[int]) -> dict[Key, tuple[float, frozenset]]:
    """Fold or discard groups whose joint upstream has been reached.

    A group is resolvable once every site it occurs in has been merged. For
    each entry: a fully-activated group folds into the applied set (its
    apportioned costs already sum to the shared cost); a partially-activated
    group invalidates the entry (the paper's withdrawal of useless/incomplete
    candidates).
    """
    resolvable = {gid for gid, sites in option_sites.items() if sites <= processed}
    if not resolvable:
        return entries
    resolved: dict[Key, tuple[float, frozenset]] = {}
    for key, (cost, applied) in entries.items():
        pending: set[Pair] = set()
        new_applied = set(applied)
        valid = True
        counts: dict[int, int] = {}
        for gid, occ_idx in key:
            if gid in resolvable:
                counts[gid] = counts.get(gid, 0) + 1
            else:
                pending.add((gid, occ_idx))
        for gid, count in counts.items():
            if count == group_size[gid]:
                new_applied.add(gid)
            else:
                valid = False
                break
        if not valid:
            continue
        new_key = frozenset(pending)
        current = resolved.get(new_key)
        if current is None or cost < current[0]:
            resolved[new_key] = (cost, frozenset(new_applied))
    return resolved


def _prune(entries: dict[Key, float], cap: int) -> dict[Key, float]:
    """Keep the empty key and the ``cap`` cheapest candidate entries."""
    if len(entries) <= cap:
        return entries
    empty: Key = frozenset()
    kept = dict(sorted(entries.items(), key=lambda kv: kv[1])[:cap])
    if empty in entries:
        kept[empty] = entries[empty]
    return kept


def _prune_global(entries: dict[Key, tuple[float, frozenset]],
                  cap: int) -> dict[Key, tuple[float, frozenset]]:
    if len(entries) <= cap:
        return entries
    empty: Key = frozenset()
    kept = dict(sorted(entries.items(), key=lambda kv: kv[1][0])[:cap])
    if empty in entries and empty not in kept:
        kept[empty] = entries[empty]
    return kept
