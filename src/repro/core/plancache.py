"""Plan cache: fingerprint-keyed LRU of compiled programs.

The north-star deployment compiles the same handful of algorithms over and
over against datasets whose metadata rarely changes — the workload
SystemML-style optimizers serve with fusion-plan caches. A compiled plan is
valid for exactly the inputs the optimizer saw, so the cache key is a
deterministic fingerprint of everything the optimizer's decisions depend
on:

* the printed program text (plus each loop's ``max_iterations`` budget,
  which the printer omits);
* every input's :class:`~repro.matrix.meta.MatrixMeta` — shape, sparsity,
  and the symmetric flag the search exploits;
* identity tokens for any bound input *data* (data-dependent estimators
  sketch real structure, so two different matrices with equal metadata must
  not share a plan — tokens are per-object, handed out by a registry that
  survives as long as the cache);
* the semantic fields of :class:`~repro.config.OptimizerConfig` (estimator,
  strategy, search, combiner, budgets, and — for mid-run replanning — the
  ``calibration`` state and ``temp_prefix``; the performance-only knobs
  like worker counts are excluded so they never fragment the cache);
* the full :class:`~repro.config.ClusterConfig` and
  :class:`~repro.runtime.hybrid.ExecutionPolicy` (pricing inputs) — the
  worker count is part of the cluster text, so a replan priced for a
  post-crash shrunken cluster keys separately from the original plan while
  repeated replans against the same shrunken topology hit;
* the compile-time iteration budget.

Anything that could change the chosen plan or its predicted cost changes
the fingerprint; anything that could not, does not. Eviction is LRU with
hit/miss/eviction/coalesce counters surfaced in compile notes and the CLI.

The cache is safe under concurrent access: the LRU dict, the counters,
and the token registry are guarded by locks so many serving threads can
compile against one process-wide cache (the optimizer-as-a-service
deployment, docs/architecture.md §14). Single-flight deduplication of
concurrent cold compiles lives one level up, in
:meth:`repro.core.optimizer.ReMacOptimizer.compile`, which reports
followers through the ``coalesced`` counter here.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, fields

from ..config import ClusterConfig, OptimizerConfig
from ..lang.printer import format_program
from ..lang.program import Program
from ..runtime.hybrid import ExecutionPolicy
from ..runtime.plan import CompiledProgram

#: OptimizerConfig fields that cannot affect the chosen plan or its
#: predicted cost — excluded from fingerprints so toggling them never
#: fragments the cache.
PERF_ONLY_CONFIG_FIELDS = frozenset({
    "plan_cache", "plan_cache_size", "cost_memo", "pricing_workers",
})

#: ClusterConfig fields that cannot affect the chosen plan or its
#: predicted cost — the kernel pool width, backend, and serial/parallel
#: gate only change host wall-clock, so toggling them must hit the same
#: cached plan.
PERF_ONLY_CLUSTER_FIELDS = frozenset({
    "kernel_workers", "kernel_backend", "kernel_parallel_threshold",
})


class DataTokens:
    """Stable identity tokens for bound input data objects.

    Metadata alone under-determines a plan when a data-dependent estimator
    (MNC, density map, sampling, exact) sketches the actual matrices, so
    fingerprints include one token per bound input. Tokens are per-object:
    the same matrix object always yields the same token (the service case —
    one resident dataset, many compiles), while a new object — even with
    equal contents — yields a fresh token, which can only cause a spurious
    miss, never a wrong hit. Liveness is tracked with weak references so a
    recycled ``id()`` is never mistaken for the old object, and a weakref
    callback purges the entry when the referent is collected, so the
    registry stays bounded by the number of *live* inputs rather than
    growing forever across short-lived ones.
    """

    def __init__(self) -> None:
        self._by_id: dict[int, tuple] = {}
        self._serial = 0
        # Fingerprinting runs concurrently in a multi-tenant server, and
        # token handout is a read-modify-write of the registry. Reentrant
        # because the weakref purge callback can fire from a GC triggered
        # inside the locked region.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        """Number of registered (live or not-yet-purged) entries."""
        return len(self._by_id)

    def __bool__(self) -> bool:
        """Always truthy: a registry's identity matters even when empty.

        Without this, ``tokens or DataTokens()`` would silently replace a
        shared-but-empty registry with a throwaway one, producing equal
        serial tokens for *different* objects — a wrong-cache-hit hazard.
        """
        return True

    def token(self, value) -> str:
        if value is None:
            return "none"
        if isinstance(value, (bool, int, float)):
            return f"scalar:{value!r}"
        key = id(value)
        with self._lock:
            entry = self._by_id.get(key)
            if entry is not None:
                ref, token = entry
                if ref() is value:
                    return token
            self._serial += 1
            token = f"obj:{self._serial}"
            try:
                ref = weakref.ref(value, self._purger(key))
            except TypeError:  # not weak-referenceable: never cache-hit on it
                return f"anon:{self._serial}"
            self._by_id[key] = (ref, token)
            return token

    def _purger(self, key: int):
        """Callback dropping ``key`` when its referent is collected.

        Guarded on ref identity: by the time the callback fires, a new
        object with the recycled id may already own the slot.
        """
        def purge(ref) -> None:
            with self._lock:
                entry = self._by_id.get(key)
                if entry is not None and entry[0] is ref:
                    del self._by_id[key]
        return purge


def _config_text(config: OptimizerConfig) -> str:
    parts = [f"{f.name}={getattr(config, f.name)!r}"
             for f in fields(config) if f.name not in PERF_ONLY_CONFIG_FIELDS]
    return ";".join(parts)


def _cluster_text(cluster: ClusterConfig) -> str:
    parts = [f"{f.name}={getattr(cluster, f.name)!r}"
             for f in fields(cluster) if f.name not in PERF_ONLY_CLUSTER_FIELDS]
    return ";".join(parts)


def plan_fingerprint(program: Program, inputs: dict,
                     config: OptimizerConfig, cluster: ClusterConfig,
                     policy: ExecutionPolicy,
                     iterations: int | None = None,
                     input_data: dict | None = None,
                     tokens: DataTokens | None = None) -> str:
    """Deterministic cache key for one ``compile()`` call."""
    data = input_data or {}
    if tokens is None:  # ``or`` would discard a shared-but-empty registry
        tokens = DataTokens()
    meta_lines = []
    for name in sorted(inputs):
        meta = inputs[name]
        symmetric = getattr(meta, "symmetric", False)
        meta_lines.append(f"{name}:{meta.rows}x{meta.cols}"
                          f":{meta.sparsity!r}:{symmetric}"
                          f":{tokens.token(data.get(name))}")
    parts = [
        "program", format_program(program),
        "loops", ",".join(str(loop.max_iterations) for loop in program.loops()),
        "inputs", "\n".join(meta_lines),
        "config", _config_text(config),
        "cluster", _cluster_text(cluster),
        "policy", repr(policy),
        "iterations", repr(iterations),
    ]
    digest = hashlib.sha256("\x1e".join(parts).encode()).hexdigest()
    return digest


@dataclass
class PlanCacheStats:
    """Hit/miss/eviction/coalesce counters of one plan cache.

    ``coalesced`` counts compiles that joined another caller's in-flight
    cold compile of the same fingerprint (single-flight dedup) instead of
    racing it: every submission is exactly one of hit, miss, or coalesced.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    coalesced: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "coalesced": self.coalesced}


class PlanCache:
    """LRU cache of :class:`CompiledProgram` keyed by plan fingerprint.

    Safe under concurrent access: lookups, insertion, eviction, and every
    counter update happen under one lock, so a process-wide cache can be
    shared by all of a server's compile threads.
    """

    def __init__(self, maxsize: int = 64):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.stats = PlanCacheStats()
        self.data_tokens = DataTokens()
        self._entries: OrderedDict[str, CompiledProgram] = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> CompiledProgram | None:
        """Counting lookup: records a hit or a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def probe(self, key: str) -> CompiledProgram | None:
        """Lookup that records a hit when present but is silent on absence.

        The single-flight compile path uses this so a miss is counted only
        by the one caller that actually runs the cold compile — followers
        of an in-flight compile count as ``coalesced`` instead.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def note_miss(self) -> None:
        """Record one miss (the caller is about to compile cold)."""
        with self._lock:
            self.stats.misses += 1

    def note_coalesced(self) -> None:
        """Record one coalesced submission (joined an in-flight compile)."""
        with self._lock:
            self.stats.coalesced += 1

    def stats_dict(self) -> dict[str, int]:
        """A consistent snapshot of the counters."""
        with self._lock:
            return self.stats.as_dict()

    def put(self, key: str, compiled: CompiledProgram) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = compiled
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()


class InputSketchMemo:
    """Cross-compile memo of input sketches, shared like the plan cache.

    A cold compile's dominant data-dependent cost is sketching the bound
    inputs (MNC/density-map/sampling statistics over the actual matrices).
    In the serving deployment many *near-miss* compiles — same resident
    dataset, different program or iteration budget — re-sketch identical
    inputs, so the optimizer keeps this memo beside its plan cache, keyed
    by the same identity tokens fingerprints use: ``(estimator name, data
    token, metadata, symmetric flag)``. Sketches are immutable value
    objects and sketching is pure, so sharing the object is perf-only; a
    memo hit genuinely skips statistics collection, mirroring how a plan
    cache hit reports ``stats_collection_seconds == 0``. Calibrated
    (replanning) compiles bypass the memo entirely — calibration rewrites
    sketches from observations. Bounded LRU, lock-guarded.
    """

    def __init__(self, maxsize: int = 256):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, key: tuple):
        """The memoized sketch for ``key``, or None (counts hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(self, key: tuple, sketch) -> None:
        with self._lock:
            self._entries[key] = sketch
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._entries)}
