"""Expression normalization: transpose push-down and distributive expansion.

Step ➊ of the block-wise search (§3.2): transposes are pushed to the leaves
(``t(A %*% d)`` becomes ``t(d) %*% t(A)``), because transposes of whole
chains blow up the plan space (the paper counts >2M plans for the DFP
numerator versus Catalan(9)=4862 without transposes). Symmetric leaves
(e.g. the inverse-Hessian approximation H) additionally drop their
transpose.

Preparation for step ➋: the distributive law expands products over sums
(``H %*% (X + Y)`` becomes ``H %*% X + H %*% Y``) and scalar coefficients
are pulled out of chains, so every maximal multiplication run becomes one
clean chain block.
"""

from __future__ import annotations

from ..lang.ast import (
    Add,
    Call,
    Compare,
    ElemDiv,
    ElemMul,
    Expr,
    Literal,
    MatMul,
    MatrixRef,
    Neg,
    ScalarRef,
    Sub,
    Transpose,
)
from ..lang.typecheck import Environment
from ..matrix.meta import MatrixMeta

_MAX_PASSES = 50


def _is_scalar_like(expr: Expr, env: Environment | None) -> bool:
    """Whether ``expr`` is statically known to produce a 1x1 value."""
    if isinstance(expr, Literal):
        return True
    if isinstance(expr, ScalarRef):
        return True
    if isinstance(expr, Call) and expr.func in ("sum", "norm", "trace", "nrow",
                                                "ncol", "sqrt", "abs", "exp", "log"):
        return True
    if isinstance(expr, (Neg,)):
        return _is_scalar_like(expr.child, env)
    if isinstance(expr, (Add, Sub, ElemMul, ElemDiv)):
        # Products/sums of scalars are scalar; mixed forms are matrices.
        return _is_scalar_like(expr.left, env) and _is_scalar_like(expr.right, env)
    if isinstance(expr, MatrixRef) and env is not None:
        meta = env.get(expr.name)
        return meta is not None and meta.is_scalar_like
    if isinstance(expr, MatMul) and env is not None:
        return _static_shape(expr, env) == (1, 1)
    return False


def _static_shape(expr: Expr, env: Environment) -> tuple[int, int] | None:
    """Best-effort static shape; None when the environment can't resolve it."""
    try:
        from ..lang.typecheck import infer_expr_meta
        meta = infer_expr_meta(expr, env)
        return meta.rows, meta.cols
    except Exception:
        return None


def push_down_transposes(expr: Expr, symmetric: frozenset[str] | set[str] = frozenset(),
                         env: Environment | None = None) -> Expr:
    """Rewrite ``expr`` so transposes wrap only leaves (or opaque calls)."""
    symmetric = frozenset(symmetric)

    def rewrite(node: Expr) -> Expr:
        if isinstance(node, Transpose):
            return transpose_of(node.child)
        if isinstance(node, MatMul):
            return MatMul(rewrite(node.left), rewrite(node.right))
        if isinstance(node, Add):
            return Add(rewrite(node.left), rewrite(node.right))
        if isinstance(node, Sub):
            return Sub(rewrite(node.left), rewrite(node.right))
        if isinstance(node, ElemMul):
            return ElemMul(rewrite(node.left), rewrite(node.right))
        if isinstance(node, ElemDiv):
            return ElemDiv(rewrite(node.left), rewrite(node.right))
        if isinstance(node, Neg):
            return Neg(rewrite(node.child))
        if isinstance(node, Compare):
            return Compare(node.op, rewrite(node.left), rewrite(node.right))
        if isinstance(node, Call):
            return Call(node.func, tuple(rewrite(a) for a in node.args))
        return node

    def transpose_of(node: Expr) -> Expr:
        """The pushed-down form of t(node)."""
        if isinstance(node, Transpose):
            return rewrite(node.child)
        if isinstance(node, MatMul):
            return MatMul(transpose_of(node.right), transpose_of(node.left))
        if isinstance(node, Add):
            return Add(transpose_of(node.left), transpose_of(node.right))
        if isinstance(node, Sub):
            return Sub(transpose_of(node.left), transpose_of(node.right))
        if isinstance(node, ElemMul):
            left_scalar = _is_scalar_like(node.left, env)
            right_scalar = _is_scalar_like(node.right, env)
            left = rewrite(node.left) if left_scalar else transpose_of(node.left)
            right = rewrite(node.right) if right_scalar else transpose_of(node.right)
            return ElemMul(left, right)
        if isinstance(node, ElemDiv):
            right_scalar = _is_scalar_like(node.right, env)
            right = rewrite(node.right) if right_scalar else transpose_of(node.right)
            return ElemDiv(transpose_of(node.left), right)
        if isinstance(node, Neg):
            return Neg(transpose_of(node.child))
        if isinstance(node, MatrixRef):
            if node.name in symmetric:
                return node
            # Only the explicitly trusted set collapses transposes; a raw
            # declared flag in the environment may be invalidated by loop
            # updates. 1x1 values are trivially their own transpose.
            if env is not None:
                meta = env.get(node.name)
                if meta is not None and meta.is_scalar_like:
                    return node
            return Transpose(node)
        if _is_scalar_like(node, env):
            return rewrite(node)
        # Opaque (calls, etc.): keep a transpose wrapper at the leaf level.
        return Transpose(rewrite(node))

    return rewrite(expr)


def expand_distributive(expr: Expr, env: Environment | None = None) -> Expr:
    """Expand products over sums and pull scalar coefficients out of chains.

    Applied to a fixpoint: ``(A + B) %*% C -> A %*% C + B %*% C``;
    ``(s * A) %*% B -> s * (A %*% B)`` for scalar s; negations bubble up so
    that chains contain only positive multiplicative factors.
    """

    def one_pass(node: Expr) -> tuple[Expr, bool]:
        if isinstance(node, MatMul):
            left, changed_l = one_pass(node.left)
            right, changed_r = one_pass(node.right)
            changed = changed_l or changed_r
            if isinstance(left, (Add, Sub)):
                kind = type(left)
                return kind(MatMul(left.left, right), MatMul(left.right, right)), True
            if isinstance(right, (Add, Sub)):
                kind = type(right)
                return kind(MatMul(left, right.left), MatMul(left, right.right)), True
            if isinstance(left, Neg):
                return Neg(MatMul(left.child, right)), True
            if isinstance(right, Neg):
                return Neg(MatMul(left, right.child)), True
            # Pull scalar coefficients outside the multiplication chain.
            if isinstance(left, ElemMul) and _is_scalar_like(left.left, env) \
                    and not _is_scalar_like(left.right, env):
                return ElemMul(left.left, MatMul(left.right, right)), True
            if isinstance(right, ElemMul) and _is_scalar_like(right.left, env) \
                    and not _is_scalar_like(right.right, env):
                return ElemMul(right.left, MatMul(left, right.right)), True
            if isinstance(left, ElemDiv) and _is_scalar_like(left.right, env) \
                    and not _is_scalar_like(left.left, env):
                return ElemDiv(MatMul(left.left, right), left.right), True
            if isinstance(right, ElemDiv) and _is_scalar_like(right.right, env) \
                    and not _is_scalar_like(right.left, env):
                return ElemDiv(MatMul(left, right.left), right.right), True
            return MatMul(left, right), changed
        if isinstance(node, (Add, Sub, ElemMul, ElemDiv)):
            left, changed_l = one_pass(node.left)
            right, changed_r = one_pass(node.right)
            return type(node)(left, right), changed_l or changed_r
        if isinstance(node, Neg):
            child, changed = one_pass(node.child)
            if isinstance(child, Neg):
                return child.child, True
            return Neg(child), changed
        if isinstance(node, Transpose):
            child, changed = one_pass(node.child)
            return Transpose(child), changed
        if isinstance(node, Compare):
            left, changed_l = one_pass(node.left)
            right, changed_r = one_pass(node.right)
            return Compare(node.op, left, right), changed_l or changed_r
        if isinstance(node, Call):
            results = [one_pass(a) for a in node.args]
            changed = any(c for _, c in results)
            return Call(node.func, tuple(e for e, _ in results)), changed
        return node, False

    current = expr
    for _ in range(_MAX_PASSES):
        current, changed = one_pass(current)
        if not changed:
            return current
    return current


def normalize(expr: Expr, symmetric: frozenset[str] | set[str] = frozenset(),
              env: Environment | None = None) -> Expr:
    """Full normalization: push transposes down, then expand to a fixpoint."""
    pushed = push_down_transposes(expr, symmetric, env)
    expanded = expand_distributive(pushed, env)
    # Expansion can create new transposable shapes; iterate to a fixpoint.
    for _ in range(_MAX_PASSES):
        again = expand_distributive(push_down_transposes(expanded, symmetric, env), env)
        if again == expanded:
            return expanded
        expanded = again
    return expanded


def symmetric_names(env: Environment) -> frozenset[str]:
    """Names of environment entries flagged symmetric."""
    return frozenset(name for name, meta in env.items()
                     if isinstance(meta, MatrixMeta) and meta.symmetric)


def provably_symmetric(expr: Expr, symmetric: frozenset[str] | set[str],
                       env: Environment | None = None) -> bool:
    """Whether ``expr``'s value is symmetric for *every* input valuation.

    Conservative structural analysis used to decide if a variable's declared
    symmetry survives reassignment: sums/differences of symmetric terms,
    scalar scalings, palindromic multiplication chains (e.g. H AᵀA d dᵀ AᵀA H
    with symmetric H), and explicit ``X + t(X)`` pairs are recognized;
    anything else is assumed asymmetric.
    """
    symmetric = frozenset(symmetric)
    if _is_scalar_like(expr, env):
        return True
    if isinstance(expr, MatrixRef):
        return expr.name in symmetric
    if isinstance(expr, Transpose):
        return provably_symmetric(expr.child, symmetric, env)
    if isinstance(expr, Neg):
        return provably_symmetric(expr.child, symmetric, env)
    if isinstance(expr, (Add, Sub)):
        if provably_symmetric(expr.left, symmetric, env) and \
                provably_symmetric(expr.right, symmetric, env):
            return True
        # X + t(X) is symmetric even when X is not (BFGS's rank-two term).
        if isinstance(expr, Add):
            if _chain_tokens(Transpose(expr.left), symmetric, env) == \
                    _chain_tokens(expr.right, symmetric, env):
                return True
        return False
    if isinstance(expr, (ElemMul, ElemDiv)):
        left_scalar = _is_scalar_like(expr.left, env)
        right_scalar = _is_scalar_like(expr.right, env)
        if left_scalar and not right_scalar:
            return provably_symmetric(expr.right, symmetric, env)
        if right_scalar and not left_scalar:
            return provably_symmetric(expr.left, symmetric, env)
        return provably_symmetric(expr.left, symmetric, env) and \
            provably_symmetric(expr.right, symmetric, env)
    if isinstance(expr, MatMul):
        return _palindromic_chain(expr, symmetric, env)
    return False


def _palindromic_chain(expr: MatMul, symmetric: frozenset[str],
                       env: Environment | None) -> bool:
    """A multiplication chain equal to its own transpose (e.g. v vᵀ, H X H).

    Compares *flattened factor sequences* rather than trees: the transpose
    of a left-associated chain pushes down into a right-associated one, so
    structural tree equality would reject genuinely palindromic chains.
    """
    pushed = push_down_transposes(expr, symmetric, env)
    factors = _flatten_factors(pushed)

    def token(base: Expr, transposed: bool) -> tuple[str, bool]:
        self_transpose = (
            (isinstance(base, MatrixRef) and base.name in symmetric)
            or _is_scalar_like(base, env))
        return (repr(base), False if self_transpose else transposed)

    forward = [token(base, t) for base, t in factors]
    backward = [token(base, not t) for base, t in reversed(factors)]
    return forward == backward


def _flatten_factors(expr: Expr) -> list[tuple[Expr, bool]]:
    """Multiplicative factors of a transpose-pushed chain, with orientation."""
    if isinstance(expr, MatMul):
        return _flatten_factors(expr.left) + _flatten_factors(expr.right)
    if isinstance(expr, Transpose):
        return [(expr.child, True)]
    return [(expr, False)]


def _chain_tokens(expr: Expr, symmetric: frozenset[str],
                  env: Environment | None) -> list[tuple[str, bool]]:
    """Orientation-aware factor tokens of a chain, after transpose push-down.

    Two expressions with equal token lists compute the same value; used for
    the association-insensitive comparisons in the symmetry proofs.
    """
    pushed = push_down_transposes(expr, symmetric, env)
    tokens = []
    for base, transposed in _flatten_factors(pushed):
        self_transpose = (
            (isinstance(base, MatrixRef) and base.name in symmetric)
            or _is_scalar_like(base, env))
        tokens.append((repr(base), False if self_transpose else transposed))
    return tokens


def trusted_symmetric_names(program, env: Environment) -> frozenset[str]:
    """Declared-symmetric variables whose symmetry every assignment preserves.

    Iterates to a fixpoint: once a variable is demoted (some assignment's
    RHS is not provably symmetric under the current trusted set), other
    variables whose proofs depended on it are re-checked. This is what makes
    the transpose-canonical hash keys of the block-wise search sound — a
    symmetric flag only collapses Xᵀ to X when no update can break it.
    """
    trusted = set(symmetric_names(env))
    if not trusted:
        return frozenset()
    # Use the fully typed environment so loop-local scalars (line-search
    # denominators etc.) are recognized as scalar-like during the proofs.
    try:
        from ..lang.typecheck import check_program
        env = dict(check_program(program, env).final_env)
    except Exception:
        env = dict(env)
    assignments = list(program.assignments())
    for _ in range(len(trusted) + 1):
        demoted = False
        for stmt in assignments:
            if stmt.target in trusted:
                if not provably_symmetric(stmt.expr, frozenset(trusted), env):
                    trusted.discard(stmt.target)
                    demoted = True
        if not demoted:
            break
    return frozenset(trusted)
