"""SPORES-like baseline (Wang et al., VLDB 2020 [29]).

SPORES applies relational equality saturation to find implicit CSE, but for
long multiplication chains it falls back to *sampling* a limited number of
chain permutations, "which has no guarantee to find all CSE" (§7). It also
relies on SystemDS's fused ``mmchain`` operator, which only covers 3-matrix
chains whose middle matrix has at most ~1K columns (§6.2.2's cri3 failure).

This module reproduces those two behaviours:

* :func:`spores_search` — CSE options restricted to occurrences whose spans
  showed up as subtrees among a bounded sample of parenthesizations; LSE is
  out of scope for SPORES.
* :func:`mmchain_applicable` — the fusion constraint used when rewriting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .chains import ChainSite, ProgramChains
from .options import EliminationOption
from .search import SearchResult, blockwise_search


@dataclass
class SporesResult(SearchResult):
    """Options SPORES-style sampling discovers, plus sampling statistics."""

    sampled_plans: int = 0
    discoverable_spans: dict[int, frozenset] = field(default_factory=dict)


def spores_search(chains: ProgramChains, sample_limit: int = 24,
                  seed: int = 13) -> SporesResult:
    """Find the CSE a sampled saturation would discover.

    For each chain block, ``sample_limit`` random parenthesizations are
    drawn; a subexpression is *discoverable* only if its span appears as a
    subtree of at least one sampled plan of its block. CSE options keep only
    discoverable occurrences; options reduced below two occurrences vanish —
    exactly how sampling sacrifices redundancy for search-space size.
    """
    started = time.perf_counter()
    rng = np.random.default_rng(seed)
    result = SporesResult()
    discoverable: dict[int, set[tuple[int, int]]] = {}
    for site in chains.sites:
        spans: set[tuple[int, int]] = set()
        n = len(site)
        for _ in range(sample_limit):
            spans.update(_random_parenthesization_spans(rng, n))
            result.sampled_plans += 1
        # Single operands and the full chain are always visible.
        spans.update((i, i) for i in range(n))
        if n >= 2:
            spans.add((0, n - 1))
        discoverable[site.site_id] = spans
    result.discoverable_spans = {k: frozenset(v) for k, v in discoverable.items()}

    full = blockwise_search(chains)
    next_id = 0
    for option in full.cse_options:
        kept = tuple(occ for occ in option.occurrences
                     if occ.span in discoverable[occ.site_id])
        if len(kept) >= 2:
            result.options.append(EliminationOption(
                option_id=next_id, kind=option.kind, key=option.key,
                occurrences=kept, operands=option.operands,
                loop_constant=option.loop_constant,
                preserves_order=option.preserves_order,
                palindromic=option.palindromic))
            next_id += 1
    result.wall_seconds = time.perf_counter() - started
    return result


def _random_parenthesization_spans(rng: np.random.Generator,
                                   n: int) -> set[tuple[int, int]]:
    """Spans of the internal nodes of one random parenthesization."""
    spans: set[tuple[int, int]] = set()

    def split(i: int, j: int) -> None:
        if i >= j:
            return
        spans.add((i, j))
        k = int(rng.integers(i, j))
        split(i, k)
        split(k + 1, j)

    split(0, n - 1)
    return spans


def mmchain_applicable(site: ChainSite, metas: list, col_limit: int = 1000,
                       structural_bound: bool = True) -> bool:
    """Whether SystemDS's fused mmchain covers this chain.

    mmchain fuses exactly three-matrix chains and constrains the column
    count of the second matrix (1K by default); SPORES leans on it to
    execute chains efficiently, so chains that fail the test run in their
    original association order.

    ``structural_bound=False`` lifts both restrictions for engines with
    cost-priced fusion (:attr:`~repro.runtime.hybrid.ExecutionPolicy.fuse`):
    any chain of three or more matrices is admitted and the cost model —
    not a shape heuristic — decides whether the fused pass actually runs.
    """
    if not structural_bound:
        return len(site) >= 3
    if len(site) != 3:
        return False
    middle = metas[1]
    return middle.cols <= col_limit


def supports_program(chains: ProgramChains, max_chain_length: int = 7) -> bool:
    """Whether the SPORES implementation can run the program at all.

    The paper notes "the current implementation of SPORES does not support
    running DFP or BFGS entirely"; long chains (and the constructs around
    them) are the limiting factor, modelled here as a chain-length cap.
    """
    return all(len(site) <= max_chain_length for site in chains.sites)
