"""ReMac: redundancy elimination in distributed matrix computation.

A from-scratch Python reproduction of Chen et al., SIGMOD 2022. The public
API is organized in layers:

* :mod:`repro.lang` — the DML-like language front-end;
* :mod:`repro.matrix` / :mod:`repro.cluster` / :mod:`repro.runtime` — the
  SystemDS-like simulated distributed substrate;
* :mod:`repro.core` — the ReMac optimizer (block-wise CSE/LSE search, cost
  model, adaptive elimination via dynamic programming);
* :mod:`repro.engines` — ReMac and the comparison systems;
* :mod:`repro.algorithms` / :mod:`repro.data` — the evaluation workloads
  and datasets;
* :mod:`repro.bench` — drivers that regenerate every table and figure.

Quickstart::

    from repro import ClusterConfig, make_engine, get_algorithm, load_dataset

    dataset = load_dataset("cri1", scale=0.1)
    algo = get_algorithm("dfp")
    meta, data = algo.make_inputs(dataset.matrix)
    engine = make_engine("remac", ClusterConfig())
    result = engine.run(algo.program(iterations=5), meta, data,
                        symmetric=algo.symmetric_inputs)
    print(result.execution_seconds, result.compiled.applied_options)
"""

from .config import ClusterConfig, OptimizerConfig
from .algorithms import ALGORITHMS, get_algorithm
from .core import ReMacOptimizer, blockwise_search, build_chains
from .data import ALL_DATASET_NAMES, load_dataset
from .engines import ENGINES, make_engine
from .errors import ReproError
from .lang import parse, parse_expression
from .matrix import BlockedMatrix, MatrixMeta
from .runtime import ExecutionPolicy, Executor

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig", "OptimizerConfig",
    "ALGORITHMS", "get_algorithm",
    "ReMacOptimizer", "blockwise_search", "build_chains",
    "ALL_DATASET_NAMES", "load_dataset",
    "ENGINES", "make_engine",
    "ReproError",
    "parse", "parse_expression",
    "BlockedMatrix", "MatrixMeta",
    "ExecutionPolicy", "Executor",
    "__version__",
]
