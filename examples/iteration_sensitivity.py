"""LSE amortization: when does hoisting AᵀA pay off? (§4.3.1's division
by the iteration count, made visible.)

The one-off cost of computing AᵀA before the loop amortizes over
iterations; below a crossover iteration count the hoist is a net loss and
ReMac's adaptive elimination should refuse it. This example sweeps the
iteration budget and shows the optimizer flipping its decision exactly
where the measured times say it should.

Run:  python examples/iteration_sensitivity.py
"""

from repro import ClusterConfig, get_algorithm, load_dataset, make_engine
from repro.bench.figures import run_forced_options
from repro.bench.harness import BenchContext
from repro.bench.report import render_table


def main() -> None:
    cluster = ClusterConfig()
    algo = get_algorithm("dfp")
    dataset = load_dataset("cri1", scale=0.5)
    meta, data = algo.make_inputs(dataset.matrix)

    rows = []
    # (beyond ~40 iterations DFP converges exactly on this mini and
    # the line-search denominator hits zero - real scripts gate the loop
    # on norm(g), see repro/algorithms/scripts.py)
    for iterations in (2, 5, 10, 20, 40):
        ctx = BenchContext(cluster=cluster, scale=0.5, iterations=iterations)
        adaptive = ctx.run("remac", "dfp", "cri1")
        hoisted = {(o.kind, o.key) for o in adaptive.compiled.applied_options}
        forced = run_forced_options(ctx, "dfp", "cri1",
                                    keys=(("lse", "A' A"),))
        baseline = ctx.run("systemds*", "dfp", "cri1")
        rows.append({
            "iterations": iterations,
            "baseline_seconds": baseline.execution_seconds,
            "forced_hoist_seconds": forced["execution_seconds"],
            "adaptive_seconds": adaptive.execution_seconds,
            "adaptive_hoists_AtA": ("lse", "A' A") in hoisted,
        })
    print(render_table(rows, title="Hoisting AᵀA vs iteration budget (cri1)"))
    print("\nThe hoist's one-off cost amortizes as iterations grow; adaptive")
    print("elimination starts hoisting once the forced-hoist column beats")
    print("the baseline - the crossover the cost model predicts.")


if __name__ == "__main__":
    main()
