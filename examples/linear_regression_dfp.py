"""Compare every engine on the paper's linear-regression workloads.

Runs GD, DFP, and BFGS on a Table-2-style dataset through ReMac, SystemDS
(with and without explicit CSE), the strategy variants, and the
always-distributed baselines (pbdR/SciDB-like), then prints the comparison
table — a miniature of the paper's §6 evaluation.

Run:  python examples/linear_regression_dfp.py [dataset] [iterations]
      (dataset defaults to cri2; try cri1, cri3, red1..red3, zipf-1.4 ...)
"""

import sys

import numpy as np

from repro import ClusterConfig, get_algorithm, load_dataset, make_engine
from repro.algorithms import run_reference
from repro.bench.report import render_table

ENGINES = ("systemds*", "systemds", "remac-conservative", "remac-aggressive",
           "remac", "pbdr", "scidb")


def main(dataset_name: str = "cri2", iterations: int = 20) -> None:
    cluster = ClusterConfig()
    dataset = load_dataset(dataset_name, scale=0.5)
    print(f"Dataset {dataset.name}: {dataset.shape[0]}x{dataset.shape[1]}, "
          f"sparsity {dataset.meta.sparsity:.4f} ({dataset.description})\n")

    rows = []
    for algo_name in ("gd", "dfp", "bfgs"):
        algo = get_algorithm(algo_name)
        meta, data = algo.make_inputs(dataset.matrix)
        reference = run_reference(algo_name, data, iterations)
        for engine_name in ENGINES:
            engine = make_engine(engine_name, cluster)
            result = engine.run(algo.program(iterations), meta, data,
                                symmetric=algo.symmetric_inputs,
                                iterations=iterations)
            correct = all(
                np.allclose(result.value(out), reference[out],
                            atol=1e-4, rtol=1e-3)
                for out in algo.outputs)
            rows.append({
                "algorithm": algo_name,
                "engine": engine_name,
                "simulated_seconds": result.execution_seconds,
                "options_applied": (len(result.compiled.applied_options)
                                    if result.compiled else 0),
                "matches_numpy": correct,
            })
    print(render_table(rows, title=f"Engines on {dataset_name} "
                                   f"({iterations} iterations)"))

    # Highlight the headline comparison.
    by = {(r["algorithm"], r["engine"]): r["simulated_seconds"] for r in rows}
    for algo_name in ("gd", "dfp", "bfgs"):
        speedup = by[(algo_name, "systemds")] / by[(algo_name, "remac")]
        print(f"{algo_name}: ReMac is {speedup:.1f}x faster than SystemDS")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "cri2"
    iters = int(sys.argv[2]) if len(sys.argv) > 2 else 20
    main(name, iters)
