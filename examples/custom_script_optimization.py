"""Inside the optimizer: blocks, the hash-table search, and the cost graph.

Walks a custom user script through each stage of the ReMac pipeline and
prints the intermediate artifacts the paper illustrates: the coordinate
blocks (Fig. 4), every CSE/LSE option the sliding-window search finds
(Fig. 5), the cost graph with candidate costs (Fig. 6), the options the
probing DP picks, and the final rewritten program.

Run:  python examples/custom_script_optimization.py
"""

import numpy as np

from repro import ClusterConfig, parse
from repro.core import (
    blockwise_search,
    build_chains,
    build_cost_graph,
    crossblock_search,
    probe,
)
from repro.core.build import build_all_tables, cost_option, statement_sketch_envs
from repro.core.cost import CostModel, sketch_inputs
from repro.core.rewrite import rewrite_program
from repro.core.sparsity import make_estimator
from repro.lang import format_program
from repro.matrix import MatrixMeta

# A ridge-regression-flavoured script with deliberate redundancy: the
# normal-equations matrix GᵀG appears in two statements, and P X Y + X Y Q
# hides a cross-block factorization.
SCRIPT = """
input G, y, w, P, X, Y, Q
i = 0
while (i < 15) {
  r = t(G) %*% G %*% w - t(G) %*% y
  w = w - 0.001 * r
  S = P %*% X %*% Y + X %*% Y %*% Q
  i = i + 1
}
"""


def main() -> None:
    n, k = 6000, 96
    inputs = {
        "G": MatrixMeta(n, k, 0.4),
        "y": MatrixMeta(n, 1),
        "w": MatrixMeta(k, 1),
        "P": MatrixMeta(k, k, 0.9),
        "X": MatrixMeta(k, k, 0.9),
        "Y": MatrixMeta(k, k, 0.9),
        "Q": MatrixMeta(k, k, 0.9),
        "i": MatrixMeta(1, 1),
    }
    program = parse(SCRIPT, scalar_names={"i"}, max_iterations=15)
    chains = build_chains(program, inputs, iterations=15)

    print("=== Step 1: coordinate blocks (Fig. 4) ===")
    for site in chains.sites:
        constant = all(op.loop_constant for op in site.operands)
        tag = " [loop-constant]" if constant and site.in_loop else ""
        print(f"  block {site.site_id}: {' '.join(site.tokens())} "
              f"at coordinates {site.coords}{tag}")

    print("\n=== Step 2: block-wise sliding-window search (Fig. 5) ===")
    search = blockwise_search(chains)
    print(f"  {search.windows_visited} windows, {search.hash_entries} hash keys, "
          f"{search.wall_seconds * 1e3:.2f} ms")
    for option in search.options:
        print(f"  {option}")

    print("\n=== Step 2b: cross-block grouping (§3.2 Discussion) ===")
    cross = crossblock_search(chains)
    for option in cross.options:
        print(f"  {option}")
    if not cross.options:
        print("  (none)")

    print("\n=== Step 3: cost graph (Fig. 6) ===")
    rng = np.random.default_rng(3)
    data = {
        "G": rng.random((n, k)) * (rng.random((n, k)) < 0.4),
        "y": rng.random((n, 1)), "w": np.zeros((k, 1)),
        "P": rng.random((k, k)), "X": rng.random((k, k)),
        "Y": rng.random((k, k)), "Q": rng.random((k, k)), "i": 0.0,
    }
    model = CostModel(ClusterConfig(), make_estimator("mnc"))
    sketches = sketch_inputs(model, inputs, data)
    envs = statement_sketch_envs(chains, model, sketches)
    tables = build_all_tables(chains, model, envs)
    costings = [cost_option(o, chains, model, tables, envs)
                for o in search.options]
    graph = build_cost_graph(chains, tables, costings)
    print(f"  {graph.num_operators} candidate operators, "
          f"{graph.num_candidate_costs} candidate costs")
    print(graph.describe(limit=8))

    print("\n=== Step 4: probing DP picks the efficient combination ===")
    outcome = probe(chains, model, search.options, sketches)
    print(f"  plain chain cost:  {outcome.plain_cost:.4f} s")
    print(f"  chosen chain cost: {outcome.chain_cost:.4f} s")
    for option in outcome.chosen:
        print(f"  picked {option}")

    print("\n=== Step 5: rewritten program ===")
    rewritten = rewrite_program(chains, outcome.chosen, model, sketches)
    print(format_program(rewritten))


if __name__ == "__main__":
    main()
