"""Skew study: how the sparsity estimator changes ReMac's plans (§6.5).

Sweeps Zipf-skewed datasets (zipf-0.0 … zipf-2.8) and compares ReMac with
the metadata-based estimator versus MNC. On skewed data the uniform
assumption underestimates the density of intermediates such as AᵀA, which
can mislead the cost model into a suboptimal combination of elimination
options — MNC's count sketches see the hot rows and keep the plan honest.

Run:  python examples/skewed_data_study.py
"""

import numpy as np

from repro import ClusterConfig, get_algorithm, make_engine
from repro.bench.report import render_table
from repro.core.sparsity import make_estimator
from repro.data import ZIPF_EXPONENTS, generate_zipf, skew_concentration, zipf_name
from repro.data.datasets import Dataset
from repro.data.synthetic import DatasetSpec, observed_statistics
from repro.matrix import MatrixMeta

ITERATIONS = 20

#: A sparser family than the cri2-shaped zipf datasets: sparse enough that
#: the gram matrix AᵀA does NOT saturate to fully dense, so its density
#: genuinely moves with skew — the regime where the metadata estimator's
#: uniform assumption visibly breaks.
STUDY_SPEC = DatasetSpec("zipf-study", 65536, 192, 0.004,
                         "-", "-", 0.0, "-", "sparse study family")


def load_study_dataset(exponent: float, scale: float = 0.5) -> Dataset:
    matrix = generate_zipf(exponent, base=STUDY_SPEC, scale=scale)
    stats = observed_statistics(matrix)
    meta = MatrixMeta(stats["rows"], stats["cols"], stats["sparsity"])
    return Dataset(zipf_name(exponent), matrix, meta,
                   description=f"study family, Zipf exponent {exponent}")


def estimator_accuracy_row(dataset) -> dict:
    """How well each estimator predicts the density of AᵀA on this data."""
    matrix = dataset.matrix
    gram = (matrix.T @ matrix)
    cells = gram.shape[0] * gram.shape[1]
    truth = (gram != 0).sum() / cells
    row = {"dataset": dataset.name,
           "hot_5pct_rows": skew_concentration(matrix),
           "true_AtA_density": float(truth)}
    for name in ("metadata", "mnc"):
        est = make_estimator(name)
        sketch = est.sketch_data(matrix)
        guess = est.meta(est.matmul(est.transpose(sketch), sketch)).sparsity
        row[f"{name}_estimate"] = guess
    return row


def main() -> None:
    cluster = ClusterConfig()
    algo = get_algorithm("dfp")

    accuracy_rows = []
    timing_rows = []
    for exponent in ZIPF_EXPONENTS:
        dataset = load_study_dataset(exponent)
        accuracy_rows.append(estimator_accuracy_row(dataset))

        meta, data = algo.make_inputs(dataset.matrix)
        row = {"dataset": dataset.name}
        for estimator in ("metadata", "mnc"):
            engine = make_engine("remac", cluster, estimator=estimator)
            result = engine.run(algo.program(ITERATIONS), meta, data,
                                symmetric=algo.symmetric_inputs,
                                iterations=ITERATIONS)
            row[f"remac_{estimator}_seconds"] = result.execution_seconds
        baseline = make_engine("systemds", cluster)
        row["systemds_seconds"] = baseline.run(
            algo.program(ITERATIONS), meta, data,
            symmetric=algo.symmetric_inputs,
            iterations=ITERATIONS).execution_seconds
        timing_rows.append(row)

    print(render_table(accuracy_rows,
                       title="AᵀA density: truth vs estimators by skew"))
    print()
    print(render_table(timing_rows,
                       title=f"DFP execution time by skew ({ITERATIONS} iterations)"))

    worst_md = max(abs(r["metadata_estimate"] - r["true_AtA_density"])
                   for r in accuracy_rows)
    worst_mnc = max(abs(r["mnc_estimate"] - r["true_AtA_density"])
                    for r in accuracy_rows)
    print(f"\nWorst-case density error: metadata {worst_md:.3f}, MNC {worst_mnc:.3f}")


if __name__ == "__main__":
    main()
