"""Quickstart: find and eliminate redundancy in a matrix program.

Optimizes the paper's running example — the DFP update whose expression
``H AᵀA d dᵀ AᵀA H / (dᵀ AᵀA H AᵀA d) + d dᵀ / (2 dᵀ AᵀA d)`` hides the
common subexpression ``Ad`` and the loop-constant ``AᵀA`` — and runs both
the original and optimized plans on the simulated cluster.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ClusterConfig, ReMacOptimizer, parse
from repro.lang import format_program
from repro.matrix import MatrixMeta
from repro.runtime import Executor

SCRIPT = """
input A, b, x, H
i = 0
g = 2 * (t(A) %*% (A %*% x) - t(A) %*% b)
while (i < 20) {
  d = 0 - H %*% g
  alpha = (0 - (t(g) %*% d)) / (2 * (t(d) %*% t(A) %*% A %*% d))
  x = x + alpha * d
  H = H - H %*% t(A) %*% A %*% d %*% t(d) %*% t(A) %*% A %*% H / (t(d) %*% t(A) %*% A %*% H %*% t(A) %*% A %*% d) + d %*% t(d) / (2 * (t(d) %*% t(A) %*% A %*% d))
  g = g + 2 * alpha * (t(A) %*% A %*% d)
  i = i + 1
}
"""


def main() -> None:
    # --- a least-squares problem --------------------------------------
    rng = np.random.default_rng(7)
    m, n = 8000, 64
    A = rng.random((m, n))
    x_true = rng.random((n, 1))
    data = {
        "A": A,
        "b": A @ x_true + 0.01 * rng.standard_normal((m, 1)),
        "x": np.zeros((n, 1)),
        "H": np.eye(n) * (0.5 * n / float(np.square(A).sum())),
        "i": 0.0,
    }
    inputs = {
        "A": MatrixMeta(m, n, 1.0),
        "b": MatrixMeta(m, 1),
        "x": MatrixMeta(n, 1),
        "H": MatrixMeta(n, n, symmetric=True),
        "i": MatrixMeta(1, 1),
    }

    # --- compile with ReMac -------------------------------------------
    program = parse(SCRIPT, scalar_names={"i", "alpha"}, max_iterations=20)
    cluster = ClusterConfig()
    optimizer = ReMacOptimizer(cluster)
    compiled = optimizer.compile(program, inputs, input_data=data, iterations=20)

    print("Elimination options applied:")
    for option in compiled.applied_options:
        print(f"  {option}")
    print(f"\nPredicted cost: {compiled.estimated_cost:.4f} simulated seconds")
    print(f"Compilation:    {compiled.compile_seconds * 1e3:.1f} ms wall\n")
    print("Optimized program:")
    print(format_program(compiled.program))

    # --- run original vs optimized on the simulated cluster ------------
    def run(prog):
        executor = Executor(cluster)
        env = executor.run(prog, data, symmetric={"H"})
        return env, executor.metrics

    env_orig, metrics_orig = run(program)
    env_opt, metrics_opt = run(compiled.program)

    same = np.allclose(env_orig["x"].matrix.to_numpy(),
                       env_opt["x"].matrix.to_numpy(), atol=1e-6)
    print(f"\nResults identical: {same}")
    print(f"Original:  {metrics_orig.execution_seconds:.4f} simulated seconds")
    print(f"Optimized: {metrics_opt.execution_seconds:.4f} simulated seconds")
    print(f"Speedup:   {metrics_orig.execution_seconds / metrics_opt.execution_seconds:.1f}x")

    residual = np.linalg.norm(A @ env_opt["x"].matrix.to_numpy() - data["b"])
    print(f"\nLeast-squares residual after 20 DFP iterations: {residual:.4f}")


if __name__ == "__main__":
    main()
